//! SAT-based optimal lattice synthesis (after Gange–Søndergaard–Stuckey,
//! paper ref \[9\]).
//!
//! For a candidate grid size R×C, a CNF encodes "there is an assignment of
//! literals to sites such that the lattice computes `f`":
//!
//! * every site selects exactly one candidate control (a literal of either
//!   polarity, or a constant);
//! * for every **ON** minterm, an unrolled-reachability certificate forces a
//!   4-connected top→bottom path of true sites;
//! * for every **OFF** minterm, a certificate forces an 8-connected
//!   left→right path of *false* sites — by planar duality this is exactly
//!   the absence of a top→bottom path.
//!
//! Enumerating candidate sizes by increasing area and returning the first
//! satisfiable one yields a minimum-area lattice, quantifying the paper's
//! remark that the Fig. 5 construction is "not necessarily optimal".

use std::time::Instant;

use nanoxbar_logic::{Literal, TruthTable};
use nanoxbar_sat::{encode, Cnf, Lit as SatLit, SolveResult, Solver};

use crate::lattice::{Lattice, Site};
use crate::synth::{dual_based, SynthError};

/// Options for the optimal search.
#[derive(Clone, Debug)]
pub struct OptimalOptions {
    /// Allow constant-0/1 sites in addition to literals.
    pub allow_constants: bool,
    /// Upper bound on rows (defaults defensively to the dual-based size).
    pub max_rows: Option<usize>,
    /// Upper bound on columns.
    pub max_cols: Option<usize>,
    /// Conflict budget per SAT call; exhausting it fails
    /// [`try_synthesize`] with [`SynthError::SatBudgetExceeded`]. `None`
    /// solves without a budget (the [`synthesize`] behaviour).
    pub max_conflicts_per_call: Option<u64>,
    /// Wall-clock deadline, checked before every SAT call; passing it fails
    /// [`try_synthesize`] with [`SynthError::DeadlineExceeded`].
    pub deadline: Option<Instant>,
}

impl Default for OptimalOptions {
    fn default() -> Self {
        OptimalOptions {
            allow_constants: true,
            max_rows: None,
            max_cols: None,
            max_conflicts_per_call: None,
            deadline: None,
        }
    }
}

/// Result of an optimal synthesis run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OptimalLattice {
    /// A minimum-area lattice computing the target.
    pub lattice: Lattice,
    /// Area of the dual-based construction, for the optimality-gap metric.
    pub dual_based_area: usize,
    /// Number of SAT calls spent.
    pub sat_calls: usize,
}

/// Finds a minimum-area lattice for `f` by SAT search over grid sizes.
///
/// Practical for the paper's scale (n ≤ 4–5 and optimal areas ≤ ~20); the
/// encoding grows as `O(area² · 2^n)`.
///
/// # Examples
///
/// ```
/// use nanoxbar_lattice::synth::optimal::{synthesize, OptimalOptions};
/// use nanoxbar_logic::parse_function;
///
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let r = synthesize(&f, &OptimalOptions::default());
/// assert!(r.lattice.computes(&f));
/// assert!(r.lattice.area() <= 4);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize(f: &TruthTable, options: &OptimalOptions) -> OptimalLattice {
    try_synthesize(f, options).unwrap_or_else(|e| panic!("optimal synthesis: {e}"))
}

/// Fallible form of [`synthesize`]: honours the conflict budget and
/// deadline of [`OptimalOptions`], returning a typed [`SynthError`] when a
/// limit is hit instead of running without bound.
///
/// # Errors
///
/// [`SynthError::SatBudgetExceeded`] when a SAT call burns through
/// `max_conflicts_per_call`; [`SynthError::DeadlineExceeded`] when
/// `deadline` passes between SAT calls. With both limits unset it never
/// fails.
pub fn try_synthesize(
    f: &TruthTable,
    options: &OptimalOptions,
) -> Result<OptimalLattice, SynthError> {
    let dual = dual_based::try_synthesize(f)?;
    let dual_area = dual.area();
    if f.is_zero() || f.is_ones() {
        return Ok(OptimalLattice {
            lattice: dual,
            dual_based_area: dual_area,
            sat_calls: 0,
        });
    }

    let max_rows = options.max_rows.unwrap_or(dual.rows().max(1));
    let max_cols = options.max_cols.unwrap_or(dual.cols().max(1));
    let mut sat_calls = 0;

    // Candidate sizes ordered by area, then by squareness (prefer balanced).
    let mut sizes: Vec<(usize, usize)> = (1..=max_rows)
        .flat_map(|r| (1..=max_cols).map(move |c| (r, c)))
        .collect();
    sizes.sort_by_key(|&(r, c)| (r * c, r.abs_diff(c)));

    for (rows, cols) in sizes {
        if rows * cols > dual_area {
            break;
        }
        if options
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
        {
            return Err(SynthError::DeadlineExceeded { sat_calls });
        }
        sat_calls += 1;
        match try_size_limited(
            f,
            rows,
            cols,
            options.allow_constants,
            options.max_conflicts_per_call,
        ) {
            Ok(Some(lattice)) => {
                debug_assert!(lattice.computes(f));
                return Ok(OptimalLattice {
                    lattice,
                    dual_based_area: dual_area,
                    sat_calls,
                });
            }
            Ok(None) => {}
            Err(SynthError::SatBudgetExceeded { .. }) => {
                return Err(SynthError::SatBudgetExceeded { sat_calls });
            }
            Err(other) => return Err(other),
        }
    }
    Ok(OptimalLattice {
        lattice: dual,
        dual_based_area: dual_area,
        sat_calls,
    })
}

/// Attempts to realise `f` on a fixed R×C grid; returns the lattice if SAT.
pub fn try_size(
    f: &TruthTable,
    rows: usize,
    cols: usize,
    allow_constants: bool,
) -> Option<Lattice> {
    try_size_limited(f, rows, cols, allow_constants, None)
        .expect("unbudgeted sat call cannot give up")
}

/// [`try_size`] with an optional conflict budget per SAT call.
///
/// # Errors
///
/// [`SynthError::SatBudgetExceeded`] when the budget runs out before the
/// solver reaches a verdict.
pub fn try_size_limited(
    f: &TruthTable,
    rows: usize,
    cols: usize,
    allow_constants: bool,
    max_conflicts: Option<u64>,
) -> Result<Option<Lattice>, SynthError> {
    let n = f.num_vars();
    let sites = rows * cols;

    // Candidate controls per site.
    let mut candidates: Vec<Site> = Vec::with_capacity(2 * n + 2);
    for v in 0..n {
        candidates.push(Site::Literal(Literal::positive(v)));
        candidates.push(Site::Literal(Literal::negative(v)));
    }
    if allow_constants {
        candidates.push(Site::Const(false));
        candidates.push(Site::Const(true));
    }

    let mut cnf = Cnf::new();
    // sel[s][k]: site s selects candidate k.
    let sel: Vec<Vec<SatLit>> = (0..sites)
        .map(|_| {
            (0..candidates.len())
                .map(|_| cnf.fresh_var().positive())
                .collect()
        })
        .collect();
    for sel_site in &sel {
        encode::exactly_one(&mut cnf, sel_site);
    }

    // Per-minterm site truth values.
    let minterm_count = 1u64 << n;
    // truth[m][s]: site s is ON under minterm m.
    let mut truth: Vec<Vec<SatLit>> = Vec::with_capacity(minterm_count as usize);
    for m in 0..minterm_count {
        let row: Vec<SatLit> = (0..sites).map(|_| cnf.fresh_var().positive()).collect();
        for s in 0..sites {
            for (k, cand) in candidates.iter().enumerate() {
                if cand.is_on(m) {
                    cnf.add_clause([!sel[s][k], row[s]]);
                } else {
                    cnf.add_clause([!sel[s][k], !row[s]]);
                }
            }
        }
        truth.push(row);
    }

    let site_index = |r: usize, c: usize| r * cols + c;

    // Reachability certificate for one minterm.
    // `active` gives the per-site "usable" literal (true sites for ON
    // minterms, false sites for OFF minterms); `king` selects adjacency;
    // sources/sinks select the plate pair.
    let add_path_certificate =
        |cnf: &mut Cnf, usable: &dyn Fn(usize) -> SatLit, king: bool, top_bottom: bool| {
            let steps = sites; // longest simple path bound
                               // reach[s][k] (flattened): site reachable from the source plate in
                               // <= k expansion rounds.
            let mut reach: Vec<Vec<SatLit>> = Vec::with_capacity(steps + 1);
            let layer0: Vec<SatLit> = (0..sites).map(|_| cnf.fresh_var().positive()).collect();
            for r in 0..rows {
                for c in 0..cols {
                    let s = site_index(r, c);
                    let is_source = if top_bottom { r == 0 } else { c == 0 };
                    if is_source {
                        // layer0[s] -> usable(s)
                        cnf.add_clause([!layer0[s], usable(s)]);
                    } else {
                        cnf.add_clause([!layer0[s]]);
                    }
                }
            }
            reach.push(layer0);
            for k in 1..=steps {
                let layer: Vec<SatLit> = (0..sites).map(|_| cnf.fresh_var().positive()).collect();
                for r in 0..rows {
                    for c in 0..cols {
                        let s = site_index(r, c);
                        // layer[s] -> usable(s)
                        cnf.add_clause([!layer[s], usable(s)]);
                        // layer[s] -> prev[s] OR OR(prev[neighbors])
                        let mut support = vec![reach[k - 1][s]];
                        let deltas: &[(i64, i64)] = if king {
                            &[
                                (-1, -1),
                                (-1, 0),
                                (-1, 1),
                                (0, -1),
                                (0, 1),
                                (1, -1),
                                (1, 0),
                                (1, 1),
                            ]
                        } else {
                            &[(-1, 0), (1, 0), (0, -1), (0, 1)]
                        };
                        for (dr, dc) in deltas {
                            let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                            if nr >= 0 && nc >= 0 && (nr as usize) < rows && (nc as usize) < cols {
                                support.push(reach[k - 1][site_index(nr as usize, nc as usize)]);
                            }
                        }
                        let mut clause = vec![!layer[s]];
                        clause.extend(support);
                        cnf.add_clause(clause);
                    }
                }
                reach.push(layer);
            }
            // Some sink site reachable at the last layer.
            let sinks: Vec<SatLit> = (0..rows)
                .flat_map(|r| (0..cols).map(move |c| (r, c)))
                .filter(|&(r, c)| {
                    if top_bottom {
                        r == rows - 1
                    } else {
                        c == cols - 1
                    }
                })
                .map(|(r, c)| reach[steps][site_index(r, c)])
                .collect();
            cnf.add_clause(sinks);
        };

    for m in 0..minterm_count {
        if f.value(m) {
            let row = truth[m as usize].clone();
            add_path_certificate(&mut cnf, &move |s| row[s], false, true);
        } else {
            let row = truth[m as usize].clone();
            add_path_certificate(&mut cnf, &move |s| !row[s], true, false);
        }
    }

    let mut solver = Solver::from_cnf(&cnf);
    let verdict = match max_conflicts {
        Some(budget) => solver.solve_limited(&[], budget),
        None => solver.solve(),
    };
    match verdict {
        SolveResult::Sat(model) => {
            let mut grid = Vec::with_capacity(rows);
            for r in 0..rows {
                let mut row = Vec::with_capacity(cols);
                for c in 0..cols {
                    let s = site_index(r, c);
                    let k = (0..candidates.len())
                        .find(|&k| model[sel[s][k].var().index()])
                        .expect("exactly-one selection");
                    row.push(candidates[k]);
                }
                grid.push(row);
            }
            Ok(Some(Lattice::from_rows(n, grid).expect("rectangular")))
        }
        SolveResult::Unsat => Ok(None),
        SolveResult::Unknown => Err(SynthError::SatBudgetExceeded { sat_calls: 1 }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_logic::parse_function;

    fn optimal(expr: &str) -> (OptimalLattice, TruthTable) {
        let f = parse_function(expr).unwrap();
        (synthesize(&f, &OptimalOptions::default()), f)
    }

    #[test]
    fn and_or_single_sites() {
        let (r, f) = optimal("x0 x1");
        assert!(r.lattice.computes(&f));
        assert_eq!(r.lattice.area(), 2);
        let (r, f) = optimal("x0 + x1");
        assert!(r.lattice.computes(&f));
        assert_eq!(r.lattice.area(), 2);
    }

    #[test]
    fn single_literal_is_1x1() {
        let (r, f) = optimal("!x1");
        assert!(r.lattice.computes(&f));
        assert_eq!(r.lattice.area(), 1);
    }

    #[test]
    fn xnor_optimal_is_4() {
        // The 2x2 of Fig. 5's example is optimal: XNOR needs 4 sites.
        let (r, f) = optimal("x0 x1 + !x0 !x1");
        assert!(r.lattice.computes(&f));
        assert_eq!(r.lattice.area(), 4);
        assert_eq!(r.dual_based_area, 4);
    }

    #[test]
    fn optimal_never_exceeds_dual_based() {
        let mut state = 0x0B7A1Cu64;
        for _ in 0..8 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let bits = state;
            let f = TruthTable::from_fn(3, |m| (bits >> (m % 64)) & 1 == 1);
            let r = synthesize(&f, &OptimalOptions::default());
            assert!(r.lattice.computes(&f), "bits {bits:x}");
            assert!(r.lattice.area() <= r.dual_based_area);
        }
    }

    #[test]
    fn expired_deadline_fails_typed() {
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        let options = OptimalOptions {
            deadline: Some(Instant::now() - std::time::Duration::from_millis(1)),
            ..OptimalOptions::default()
        };
        assert_eq!(
            try_synthesize(&f, &options),
            Err(SynthError::DeadlineExceeded { sat_calls: 0 })
        );
    }

    #[test]
    fn generous_budget_matches_unbudgeted() {
        let f = parse_function("x0 x1 + !x0 !x1 + x2").unwrap();
        let unbudgeted = synthesize(&f, &OptimalOptions::default());
        let options = OptimalOptions {
            max_conflicts_per_call: Some(1_000_000),
            ..OptimalOptions::default()
        };
        let budgeted = try_synthesize(&f, &options).expect("budget is generous");
        assert_eq!(budgeted.lattice.area(), unbudgeted.lattice.area());
        assert!(budgeted.lattice.computes(&f));
    }

    #[test]
    fn majority_three() {
        let f = nanoxbar_logic::suite::majority(3);
        let r = synthesize(&f, &OptimalOptions::default());
        assert!(r.lattice.computes(&f));
        // Dual-based gives 3x3 = 9; the optimal is smaller.
        assert!(r.lattice.area() < 9, "area {}", r.lattice.area());
    }
}
