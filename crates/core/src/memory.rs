//! Memory elements on crossbars (paper Sec. V, future-work item 3).
//!
//! A gated D-latch built from crossbar-realised gates with an explicit
//! feedback iteration: `q⁺ = enable·d + ¬enable·q`. The latch's
//! characteristic function is synthesised on the chosen technology and the
//! feedback loop is stepped to a fixed point, which models how a
//! nano-crossbar SSM would hold state between clock phases.

use nanoxbar_logic::parse_function;

use crate::tech::{synth, Realization, Technology};

/// A crossbar-realised gated D-latch.
///
/// Inputs of the characteristic function: `x0 = d`, `x1 = enable`,
/// `x2 = q` (present state).
#[derive(Clone, Debug)]
pub struct DLatch {
    technology: Technology,
    next_q: Realization,
    state: bool,
}

impl DLatch {
    /// Synthesises the latch on `tech`, initial state 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use nanoxbar_core::memory::DLatch;
    /// use nanoxbar_core::Technology;
    ///
    /// let mut latch = DLatch::synthesize(Technology::FourTerminal);
    /// latch.apply(true, true);   // load 1
    /// assert!(latch.q());
    /// latch.apply(false, false); // hold
    /// assert!(latch.q());
    /// ```
    pub fn synthesize(tech: Technology) -> Self {
        let f = parse_function("x0 x1 + !x1 x2").expect("static latch equation");
        DLatch {
            technology: tech,
            next_q: synth(&f, tech),
            state: false,
        }
    }

    /// The stored bit.
    pub fn q(&self) -> bool {
        self.state
    }

    /// Technology of the realisation.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// Crosspoint area of the latch array.
    pub fn area(&self) -> usize {
        self.next_q.area()
    }

    /// Applies inputs and iterates the feedback loop to a fixed point.
    ///
    /// Returns the settled output. The loop always settles within two
    /// iterations for this characteristic function (it is monotone in `q`
    /// once `d`/`enable` are fixed).
    pub fn apply(&mut self, d: bool, enable: bool) -> bool {
        for _ in 0..4 {
            let m = (u64::from(d)) | (u64::from(enable) << 1) | (u64::from(self.state) << 2);
            let next = self.next_q.eval(m);
            if next == self.state {
                break;
            }
            self.state = next;
        }
        self.state
    }

    /// Forces the stored state (power-on reset).
    pub fn reset(&mut self, value: bool) {
        self.state = value;
    }
}

/// An `n`-bit register of D-latches sharing one enable.
#[derive(Clone, Debug)]
pub struct Register {
    latches: Vec<DLatch>,
}

impl Register {
    /// Synthesises `n` latches on `tech`.
    pub fn synthesize(n: usize, tech: Technology) -> Self {
        Register {
            latches: (0..n).map(|_| DLatch::synthesize(tech)).collect(),
        }
    }

    /// Bit width.
    pub fn width(&self) -> usize {
        self.latches.len()
    }

    /// The stored word.
    pub fn value(&self) -> u64 {
        self.latches
            .iter()
            .enumerate()
            .fold(0, |acc, (i, l)| acc | (u64::from(l.q()) << i))
    }

    /// Loads a word when `enable` is high; holds otherwise.
    pub fn apply(&mut self, word: u64, enable: bool) -> u64 {
        for (i, latch) in self.latches.iter_mut().enumerate() {
            latch.apply((word >> i) & 1 == 1, enable);
        }
        self.value()
    }

    /// Total crosspoint area.
    pub fn area(&self) -> usize {
        self.latches.iter().map(DLatch::area).sum()
    }

    /// Resets all bits.
    pub fn reset(&mut self, word: u64) {
        for (i, latch) in self.latches.iter_mut().enumerate() {
            latch.reset((word >> i) & 1 == 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_loads_and_holds_on_all_technologies() {
        for tech in Technology::ALL {
            let mut latch = DLatch::synthesize(tech);
            assert!(!latch.q());
            latch.apply(true, true);
            assert!(latch.q(), "{tech}: load 1");
            latch.apply(false, false);
            assert!(latch.q(), "{tech}: hold through d=0");
            latch.apply(false, true);
            assert!(!latch.q(), "{tech}: load 0");
            latch.apply(true, false);
            assert!(!latch.q(), "{tech}: hold through d=1");
        }
    }

    #[test]
    fn register_word_operations() {
        let mut reg = Register::synthesize(4, Technology::FourTerminal);
        assert_eq!(reg.value(), 0);
        reg.apply(0b1010, true);
        assert_eq!(reg.value(), 0b1010);
        reg.apply(0b0101, false); // hold
        assert_eq!(reg.value(), 0b1010);
        reg.apply(0b0101, true);
        assert_eq!(reg.value(), 0b0101);
        assert!(reg.area() > 0);
        assert_eq!(reg.width(), 4);
    }

    #[test]
    fn reset_overrides_state() {
        let mut reg = Register::synthesize(3, Technology::Diode);
        reg.reset(0b111);
        assert_eq!(reg.value(), 0b111);
    }
}
