//! Cross-crate integration tests: the full synthesis → mapping → test
//! pipeline on realistic inputs.

use nanoxbar::core::ssm::Ssm;
use nanoxbar::core::Technology;
use nanoxbar::crossbar::ArraySize;
use nanoxbar::engine::{Engine, Error, FlowError, Job, Strategy};
use nanoxbar::logic::suite::standard_suite;
use nanoxbar::logic::{isop_cover, pla};
use nanoxbar::reliability::bism::{run_bism, Application, BismStrategy};
use nanoxbar::reliability::defect::DefectMap;

/// Every suite function realises correctly on every strategy — submitted
/// as one engine batch with verification on, so a single wrong
/// realisation anywhere surfaces as that job's typed error.
#[test]
fn whole_suite_on_all_strategies_as_one_batch() {
    let engine = Engine::new();
    let targets: Vec<_> = standard_suite()
        .into_iter()
        .filter(|f| !f.table.is_zero() && !f.table.is_ones())
        .collect();
    let jobs: Vec<Job> = targets
        .iter()
        .flat_map(|f| {
            [Strategy::Diode, Strategy::Fet, Strategy::DualLattice].map(|s| {
                Job::synthesize(f.table.clone())
                    .with_strategy(s)
                    .verified(true)
                    .labeled(f.name.clone())
            })
        })
        .collect();
    for result in engine.run_batch(&jobs) {
        let r = result.expect("every suite job verifies");
        assert_eq!(r.verified, Some(true), "{:?} on {}", r.label, r.strategy);
    }
}

/// PLA round trip feeds the synthesis flow unchanged.
#[test]
fn pla_to_crossbar_pipeline() {
    let f = nanoxbar::logic::parse_function("x0 x1 + !x2").unwrap();
    let text = pla::write_pla(&isop_cover(&f));
    let parsed = pla::parse_pla(&text).unwrap();
    let cover = parsed.single_output().unwrap();
    assert!(cover.computes(&f));
    let r = nanoxbar::engine::synthesize(&cover.to_truth_table(), Technology::Diode).unwrap();
    assert!(r.computes(&f));
}

/// The defect-unaware flow succeeds across a population of chips, and the
/// recovered region shrinks with density — run as engine chip jobs with
/// fabric exhaustion arriving as a typed error.
#[test]
fn defect_unaware_flow_population() {
    let engine = Engine::new();
    let f = nanoxbar::logic::parse_function("x0 x1 + !x0 !x1").unwrap();
    let size = ArraySize::new(24, 24);
    let mut k_low = 0usize;
    let mut k_high = 0usize;
    for seed in 0..8u64 {
        let clean = DefectMap::random_uniform(size, 0.01, 0.01, seed);
        let dirty = DefectMap::random_uniform(size, 0.10, 0.05, seed);
        let a = engine
            .run(&Job::synthesize(f.clone()).on_chip(clean))
            .unwrap()
            .flow
            .expect("chip job carries a flow report");
        assert!(a.bist_passed, "clean chip seed {seed}");
        k_low += a.recovered.k();
        match engine.run(&Job::synthesize(f.clone()).on_chip(dirty)) {
            Ok(result) => {
                let b = result.flow.expect("chip job carries a flow report");
                assert!(b.bist_passed, "dirty chip seed {seed}");
                k_high += b.recovered.k();
            }
            Err(Error::Flow(FlowError::InsufficientFabric { .. })) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(k_low > k_high, "recovery must degrade with density");
}

/// BISM succeeds on chips where defect-aware matching also succeeds, for
/// every strategy.
#[test]
fn bism_strategies_agree_on_feasibility() {
    let f = nanoxbar::logic::parse_function("x0 x1 x2 + !x0 !x1 + x1 !x2").unwrap();
    let app = Application::from_cover(&isop_cover(&f));
    let size = ArraySize::new(12, 12);
    for seed in 0..6u64 {
        let chip = DefectMap::random_uniform(size, 0.05, 0.02, seed + 100);
        for strategy in [
            BismStrategy::Blind,
            BismStrategy::Greedy,
            BismStrategy::Hybrid { blind_retries: 4 },
        ] {
            let stats = run_bism(&app, &chip, strategy, 1000, seed);
            assert!(stats.success, "{strategy:?} seed {seed}");
        }
    }
}

/// An SSM built on a defect-checked technology still steps correctly.
#[test]
fn ssm_runs_on_every_technology() {
    for tech in Technology::ALL {
        let mut counter = Ssm::counter(4, tech);
        for step in 1..=20u64 {
            counter.step(1);
            assert_eq!(counter.state(), step % 16, "{tech} step {step}");
        }
    }
}

/// Adders compose with the SSM counter: compute 7+9 then count to it.
#[test]
fn adder_feeds_counter() {
    use nanoxbar::core::arith::AdderDesign;
    let adder = AdderDesign::synthesize(4, Technology::Diode);
    let target = adder.add(7, 9);
    assert_eq!(target, 16);
    let mut counter = Ssm::counter(5, Technology::Diode);
    for _ in 0..target {
        counter.step(1);
    }
    assert_eq!(counter.state(), 16);
}
