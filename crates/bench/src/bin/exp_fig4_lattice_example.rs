//! E2 — Fig. 4: the paper's worked four-terminal lattice.
//!
//! Reconstructs the printed 3×2 lattice (columns x1,x2,x3 and x4,x5,x6 —
//! renumbered here to x0..x5), verifies it computes the stated function
//! `x1x2x3 + x1x2x5x6 + x2x3x4x5 + x4x5x6`, exercises the left-right
//! duality, and contrasts the handcrafted area with the generic dual-based
//! construction (foreshadowing the optimality gap, E10).

use nanoxbar_bench::banner;
use nanoxbar_lattice::synth::dual_based;
use nanoxbar_lattice::{computes_dual_left_right, Lattice, Site};
use nanoxbar_logic::{parse_function, Literal};

fn main() {
    banner("E2 / Fig. 4", "the paper's worked lattice example");

    let f =
        parse_function("x0x1x2 + x0x1x4x5 + x1x2x3x4 + x3x4x5").expect("static expression parses");

    let lit = |v: usize| Site::Literal(Literal::positive(v));
    let fig4 = Lattice::from_rows(
        6,
        vec![
            vec![lit(0), lit(3)],
            vec![lit(1), lit(4)],
            vec![lit(2), lit(5)],
        ],
    )
    .expect("rectangular grid");

    println!("figure-4 lattice (TOP at the first row, BOTTOM at the last):");
    println!("{fig4}");
    println!("computes the stated function: {}", fig4.computes(&f));
    println!(
        "left-right (king-move) duality holds: {}",
        computes_dual_left_right(&fig4)
    );
    println!(
        "area: {} sites ({}x{})",
        fig4.area(),
        fig4.rows(),
        fig4.cols()
    );

    let generic = dual_based::synthesize(&f);
    println!("\ngeneric dual-based lattice for the same function:");
    println!("{generic}");
    println!("computes f: {}", generic.computes(&f));
    println!(
        "area: {} sites ({}x{}) -> the Fig. 5 construction is correct but\n\
         not necessarily optimal (Sec. III-B): handcrafted {} vs generic {}",
        generic.area(),
        generic.rows(),
        generic.cols(),
        fig4.area(),
        generic.area()
    );
}
