//! Full-stack integration: bind the service on an ephemeral port, drive
//! it with concurrent clients over real sockets (mixed valid / invalid /
//! constant-function jobs), and assert the responses are input-ordered,
//! per-slot isolated, and **bit-identical** to rendering a direct
//! `Engine::run_batch` of the same jobs.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use nanoxbar_engine::{Engine, Job};
use nanoxbar_service::{result_to_json, JobSpec, Json, Server, ServiceConfig};

/// Sends `request` raw and returns `(status, body)`.
fn exchange(addr: &str, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request).expect("send");
    let mut reader = BufReader::new(stream);
    read_one_response(&mut reader)
}

fn read_one_response<R: BufRead>(reader: &mut R) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = v.trim().parse().expect("length");
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf8 body"))
}

/// Reads one `Transfer-Encoding: chunked` response and returns the
/// status plus every chunk payload stamped with its arrival time.
/// Asserts the chunked framing itself: the header must be present, a
/// `content-length` must not be, and the stream must end with the
/// zero-size terminator.
fn read_chunked_response<R: BufRead>(reader: &mut R) -> (u16, Vec<(Instant, Vec<u8>)>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lower = line.to_ascii_lowercase();
        assert!(
            !lower.starts_with("content-length:"),
            "chunked response must not declare a content-length: {line}"
        );
        if lower == "transfer-encoding: chunked" {
            chunked = true;
        }
    }
    assert!(chunked, "response must be transfer-encoding: chunked");
    let mut chunks = Vec::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size line");
        let size = usize::from_str_radix(size_line.trim_end(), 16)
            .unwrap_or_else(|e| panic!("bad chunk size {size_line:?}: {e}"));
        if size == 0 {
            let mut crlf = String::new();
            reader.read_line(&mut crlf).expect("terminator crlf");
            assert_eq!(crlf, "\r\n", "terminator chunk must end with bare CRLF");
            break;
        }
        let mut payload = vec![0u8; size];
        reader.read_exact(&mut payload).expect("chunk payload");
        chunks.push((Instant::now(), payload));
        let mut crlf = String::new();
        reader.read_line(&mut crlf).expect("chunk crlf");
        assert_eq!(crlf, "\r\n", "chunk payload must end with CRLF");
    }
    (status, chunks)
}

fn post_body(addr: &str, path: &str, body: &str) -> (u16, String) {
    exchange(
        addr,
        format!(
            "POST {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
}

/// The shared workload: slot-labelled specs mixing every outcome class.
/// Returns `(request body, slot specs)`.
fn workload() -> (String, Vec<Json>) {
    let slots: Vec<Json> = vec![
        // Valid, default strategy.
        Json::parse("{\"expr\":\"x0 x1 + !x0 !x1\",\"label\":\"slot-0\",\"verify\":true}").unwrap(),
        // Valid, explicit strategies.
        Json::parse("{\"expr\":\"x0 x1 + x1 x2\",\"strategy\":\"diode\",\"label\":\"slot-1\"}")
            .unwrap(),
        // Invalid expression: spec error, must stay in its slot.
        Json::parse("{\"expr\":\"((\",\"label\":\"slot-2\"}").unwrap(),
        // Constant on a two-terminal technology: typed engine error.
        Json::parse("{\"expr\":\"x0 + !x0\",\"strategy\":\"diode\",\"label\":\"slot-3\"}").unwrap(),
        // Unknown backend: typed engine error.
        Json::parse("{\"expr\":\"x0\",\"strategy\":\"quantum\",\"label\":\"slot-4\"}").unwrap(),
        // Valid with a chip mapping (deterministic seed + rate).
        Json::parse(
            "{\"expr\":\"x0 ^ x1\",\"label\":\"slot-5\",\
             \"chip\":{\"rows\":16,\"cols\":16,\"seed\":5,\"defect_rate\":0.05}}",
        )
        .unwrap(),
        // Duplicate of slot 1: exercises intra-batch dedupe + the cache.
        Json::parse("{\"expr\":\"x0 x1 + x1 x2\",\"strategy\":\"diode\",\"label\":\"slot-6\"}")
            .unwrap(),
        // Valid FET.
        Json::parse("{\"expr\":\"!x0 x1 + x2\",\"strategy\":\"fet\",\"label\":\"slot-7\"}")
            .unwrap(),
    ];
    let body = Json::Object(vec![("jobs".into(), Json::Array(slots.clone()))]).encode();
    (body, slots)
}

/// What the service *must* produce: parse each spec like the server does,
/// run the valid ones through a plain engine batch, and render with the
/// same wire code.
fn expected_slots(slots: &[Json]) -> Vec<Json> {
    let specs: Vec<Result<Job, String>> = slots
        .iter()
        .map(|slot| JobSpec::from_json(slot).and_then(|s| s.to_job()))
        .collect();
    let jobs: Vec<Job> = specs
        .iter()
        .filter_map(|s| s.as_ref().ok().cloned())
        .collect();
    // No cache here: cached and uncached engines must be bit-identical,
    // so the reference can be the plain one.
    let mut results = Engine::new().run_batch(&jobs).into_iter();
    specs
        .iter()
        .map(|spec| match spec {
            Err(message) => Json::parse(
                &Json::Object(vec![
                    ("ok".into(), Json::Bool(false)),
                    ("kind".into(), Json::Str("bad-request".into())),
                    ("error".into(), Json::Str(message.clone())),
                ])
                .encode(),
            )
            .unwrap(),
            Ok(_) => result_to_json(&results.next().expect("result per valid job")),
        })
        .collect()
}

#[test]
fn concurrent_batches_are_ordered_isolated_and_match_direct_engine() {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    let (body, slots) = workload();
    let expected = expected_slots(&slots);

    // 6 concurrent clients, 3 sequential batches each, all identical.
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 3;
    let responses: Vec<Vec<String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let (addr, body) = (&addr, &body);
                scope.spawn(move || {
                    (0..ROUNDS)
                        .map(|_| {
                            let (status, text) = post_body(addr, "/v1/batch", body);
                            assert_eq!(status, 200, "{text}");
                            text
                        })
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    });

    // Every response from every client and round is byte-identical (the
    // cache warms up during the run and must not change a single byte).
    let reference = &responses[0][0];
    for (c, client) in responses.iter().enumerate() {
        for (r, text) in client.iter().enumerate() {
            assert_eq!(text, reference, "client {c} round {r} diverged");
        }
    }

    // And the slots line up, in input order, with the direct engine run.
    let parsed = Json::parse(reference).expect("valid response JSON");
    let got = parsed.get("results").unwrap().as_array().unwrap();
    assert_eq!(got.len(), expected.len());
    for (i, (actual, wanted)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(actual, wanted, "slot {i}");
    }
    // Outcome classes land where the workload put them.
    for (i, ok) in [true, true, false, false, false, true, true, true]
        .into_iter()
        .enumerate()
    {
        assert_eq!(got[i].get("ok"), Some(&Json::Bool(ok)), "slot {i}");
    }
    assert_eq!(got[2].get("kind").unwrap().as_str(), Some("bad-request"));
    assert_eq!(
        got[3].get("kind").unwrap().as_str(),
        Some("constant-function")
    );
    assert_eq!(
        got[4].get("kind").unwrap().as_str(),
        Some("unknown-strategy")
    );
    assert_eq!(
        got[1].get("fingerprint"),
        got[6].get("fingerprint"),
        "duplicate slots share one synthesis"
    );
    assert!(got[5].get("flow").is_some(), "chip slot carries its flow");
    // Ordered labels echo back.
    for (i, slot) in got.iter().enumerate() {
        if slot.get("ok") == Some(&Json::Bool(true)) {
            assert_eq!(
                slot.get("label").unwrap().as_str(),
                Some(format!("slot-{i}").as_str())
            );
        }
    }

    // Single-job endpoint agrees with its batch slot, byte for byte.
    let single = slots[0].encode();
    let (status, text) = post_body(&addr, "/v1/synthesize", &single);
    assert_eq!(status, 200);
    assert_eq!(Json::parse(&text).unwrap(), expected[0]);

    handle.shutdown();
}

#[test]
fn map_requests_round_trip_through_run_batch() {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 4,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    // Mixed map slots: mappable chip, defect-saturated chip (search
    // exhausts), invalid spec (map without chip).
    let slots: Vec<Json> = vec![
        Json::parse(
            "{\"expr\":\"x0 x1 + !x0 !x1\",\"label\":\"mappable\",\
             \"chip\":{\"rows\":16,\"cols\":16,\"seed\":5,\"defect_rate\":0.05},\
             \"map\":{\"strategy\":\"greedy\",\"speculation\":4,\"seed\":2}}",
        )
        .unwrap(),
        Json::parse(
            "{\"expr\":\"x0 x1 + !x0 !x1\",\"label\":\"saturated\",\
             \"chip\":{\"rows\":8,\"cols\":8,\"seed\":1,\"defect_rate\":0.9},\
             \"map\":{\"strategy\":\"greedy\",\"max_attempts\":40}}",
        )
        .unwrap(),
        Json::parse("{\"expr\":\"x0 x1\",\"label\":\"chipless\",\"map\":{}}").unwrap(),
    ];
    let body = Json::Object(vec![("jobs".into(), Json::Array(slots.clone()))]).encode();
    let expected = expected_slots(&slots);

    let (status, text) = post_body(&addr, "/v1/batch", &body);
    assert_eq!(status, 200, "{text}");
    let parsed = Json::parse(&text).unwrap();
    let got = parsed.get("results").unwrap().as_array().unwrap();
    for (i, (actual, wanted)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(actual, wanted, "slot {i}");
    }
    let map = got[0].get("map").expect("mappable slot carries its map");
    assert_eq!(map.get("success"), Some(&Json::Bool(true)));
    assert_eq!(
        got[1].get("map").unwrap().get("success"),
        Some(&Json::Bool(false)),
        "saturated chip exhausts the search as data, not an error"
    );
    assert_eq!(got[2].get("kind").unwrap().as_str(), Some("bad-request"));

    // The dedicated endpoint returns the batch slot's body, byte for
    // byte, and repeats are byte-identical (the acceptance contract).
    let single = slots[0].encode();
    let (status, first) = post_body(&addr, "/v1/map", &single);
    assert_eq!(status, 200);
    assert_eq!(Json::parse(&first).unwrap(), expected[0]);
    let (_, second) = post_body(&addr, "/v1/map", &single);
    assert_eq!(
        first, second,
        "identical map requests must be byte-identical"
    );

    handle.shutdown();
}

#[test]
fn shutdown_drains_keepalive_connections() {
    let read_timeout = std::time::Duration::from_secs(5);
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        read_timeout,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    // Connection A: one completed request, then idle keep-alive — its
    // worker is now blocked in a read with 5s left on the clock.
    let mut idle = TcpStream::connect(&addr).expect("connect idle");
    idle.write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .expect("send");
    let mut idle_reader = BufReader::new(idle.try_clone().expect("clone"));
    let (status, _) = read_one_response(&mut idle_reader);
    assert_eq!(status, 200);

    // Connection B: a request in flight while the shutdown begins.
    let body = "{\"expr\":\"x0 x1 + !x0 !x1\",\"verify\":true}";
    let mut busy = TcpStream::connect(&addr).expect("connect busy");
    busy.write_all(
        format!(
            "POST /v1/synthesize HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .as_bytes(),
    )
    .expect("send");
    std::thread::sleep(std::time::Duration::from_millis(100));

    let started = std::time::Instant::now();
    handle.shutdown();
    let elapsed = started.elapsed();
    assert!(
        elapsed < read_timeout / 2,
        "drain took {elapsed:?}; idle keep-alive must not run out its {read_timeout:?} timeout"
    );

    // B's response was completed, not dropped.
    let mut busy_reader = BufReader::new(busy.try_clone().expect("clone"));
    let (status, text) = read_one_response(&mut busy_reader);
    assert_eq!(status, 200, "{text}");
    assert!(text.contains("\"ok\":true"), "{text}");

    // Both connections are closed (EOF), so clients re-resolve instead
    // of hanging on a dead socket.
    for (name, reader) in [("idle", &mut idle_reader), ("busy", &mut busy_reader)] {
        let mut rest = String::new();
        std::io::Read::read_to_string(reader, &mut rest).expect("read to EOF");
        assert!(
            rest.is_empty(),
            "{name} connection left extra bytes: {rest:?}"
        );
    }
}

#[test]
fn http_edges_over_real_sockets() {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        max_body_bytes: 512,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    // Keep-alive: two requests on one connection.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    for _ in 0..2 {
        stream
            .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
            .expect("send");
    }
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for _ in 0..2 {
        let (status, body) = read_one_response(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""));
    }
    drop(reader);
    drop(stream);

    // Unknown path, wrong method, malformed JSON, oversized body.
    let (status, _) = exchange(
        &addr,
        b"GET /nope HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 404);
    let (status, _) = exchange(
        &addr,
        b"PUT /v1/batch HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 405);
    let (status, text) = post_body(&addr, "/v1/synthesize", "{not json");
    assert_eq!(status, 400, "{text}");
    let big = format!("{{\"expr\":\"{}\"}}", "x".repeat(600));
    let (status, _) = post_body(&addr, "/v1/synthesize", &big);
    assert_eq!(status, 413);

    // Metrics reflect the traffic that just happened.
    let (status, text) = exchange(
        &addr,
        b"GET /metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    assert!(text.contains("nanoxbar_requests_total"), "{text}");
    assert!(text.contains("nanoxbar_http_errors_total"), "{text}");

    handle.shutdown();
}

#[test]
fn streaming_batch_delivers_first_slot_before_the_last_job_completes() {
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    // Slot 0 is a cheap synthesis; slot 1 burns a large mapping-attempt
    // budget on a defect-saturated chip, so the batch's total latency is
    // dominated by its *last* job. A buffered client sees nothing until
    // that job finishes; a streaming client must hold slot 0 long before.
    let cheap = "{\"expr\":\"x0 x1 + !x0 !x1\",\"label\":\"fast\"}";
    let heavy = "{\"expr\":\"x0 x1 x2 + x3 x4 x5 + x6 x7 x8 + x9 x10 x11\",\"label\":\"slow\",\
                 \"chip\":{\"rows\":48,\"cols\":48,\"seed\":7,\"defect_rate\":0.6},\
                 \"map\":{\"strategy\":\"greedy\",\"max_attempts\":150000}}";

    // The streaming pass goes FIRST, against a cold cache — a warmed
    // cache would make the heavy slot instant and prove nothing. The
    // buffered pass afterwards must be byte-identical anyway; that is
    // the service's determinism contract.
    let body = format!("{{\"stream\":true,\"jobs\":[{cheap},{heavy}]}}");
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let started = Instant::now();
    stream
        .write_all(
            format!(
                "POST /v1/batch HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
                body.len()
            )
            .as_bytes(),
        )
        .expect("send");
    let mut reader = BufReader::new(stream);
    let (status, chunks) = read_chunked_response(&mut reader);
    assert_eq!(status, 200);

    // One fragment per slot (the first carries the envelope prefix) plus
    // the closing `]}` — slot-at-a-time emission, not one big flush.
    assert_eq!(chunks.len(), 3, "expected prefix+slot0, slot1, tail");
    let first_text = String::from_utf8(chunks[0].1.clone()).expect("utf8 first fragment");
    assert!(
        first_text.starts_with("{\"count\":2,\"results\":["),
        "first fragment must open the envelope and carry slot 0: {first_text}"
    );
    assert!(first_text.contains("\"label\":\"fast\""), "{first_text}");

    // The timing proof: the first fragment landed while the heavy job
    // was still running. The heavy tail must dominate the exchange for
    // the assertion to mean anything, so check that too.
    let first_at = chunks[0].0 - started;
    let last_at = chunks.last().expect("tail chunk").0 - started;
    assert!(
        last_at >= Duration::from_millis(15),
        "workload too light to demonstrate streaming: whole batch in {last_at:?}"
    );
    assert!(
        first_at * 4 < last_at,
        "first slot must arrive early: first at {first_at:?}, last at {last_at:?}"
    );

    // De-chunked, the streamed body is byte-identical to the buffered
    // response for the very same jobs.
    let (status, buffered) = post_body(
        &addr,
        "/v1/batch",
        &format!("{{\"jobs\":[{cheap},{heavy}]}}"),
    );
    assert_eq!(status, 200, "{buffered}");
    let streamed: Vec<u8> = chunks
        .into_iter()
        .flat_map(|(_, payload)| payload)
        .collect();
    assert_eq!(
        String::from_utf8(streamed).expect("utf8 body"),
        buffered,
        "streamed body must be byte-identical to the buffered body"
    );

    handle.shutdown();
}

#[test]
fn slow_loris_dribble_is_reaped_by_the_reactor_not_a_worker() {
    let read_timeout = Duration::from_millis(500);
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        // One worker: if the dribbling connection occupied it, the
        // healthy client below could not be served until the timeout.
        workers: 1,
        read_timeout,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    // The loris: one header byte every 25ms, forever (from the server's
    // point of view). The request-read deadline starts at the first byte
    // and is *not* refreshed per byte, so the connection must die at
    // ~read_timeout no matter how lively the trickle looks.
    let mut loris = TcpStream::connect(&addr).expect("connect loris");
    let started = Instant::now();
    let dribbler = std::thread::spawn(move || {
        let head = b"GET /healthz HTTP/1.1\r\nhost: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n";
        for &byte in head.iter() {
            if loris.write_all(&[byte]).is_err() {
                break; // server reset us — expected, stop dribbling
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        loris
    });

    // While the dribble is in flight, the singleton worker serves other
    // clients: the half-request never reaches the queue. Finishing all
    // three exchanges before the loris deadline proves the overlap.
    std::thread::sleep(Duration::from_millis(50));
    for _ in 0..3 {
        let (status, _) = exchange(
            &addr,
            b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
        );
        assert_eq!(status, 200);
    }
    assert!(
        started.elapsed() < read_timeout,
        "healthy clients must be served while the loris still dribbles"
    );

    // The loris is reaped: reads return EOF (or a reset), promptly.
    let loris = dribbler.join().expect("dribbler");
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("set timeout");
    let mut rest = Vec::new();
    let outcome = (&loris).read_to_end(&mut rest);
    assert!(
        outcome.is_err() || rest.is_empty(),
        "timed-out dribble gets no response bytes, just a close: {rest:?}"
    );
    let lifetime = started.elapsed();
    assert!(
        lifetime < read_timeout * 4,
        "loris must die near its deadline, lived {lifetime:?}"
    );

    // And the reaping is visible in the metrics.
    let (status, text) = exchange(
        &addr,
        b"GET /metrics HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n",
    );
    assert_eq!(status, 200);
    let timeouts: u64 = text
        .lines()
        .find_map(|l| l.strip_prefix("nanoxbar_reactor_timeouts_total "))
        .expect("timeouts family present")
        .trim()
        .parse()
        .expect("counter value");
    assert!(timeouts >= 1, "reactor must count the reaped dribble");

    handle.shutdown();
}

#[test]
fn idle_keepalive_parks_past_read_timeout_and_still_serves() {
    let read_timeout = Duration::from_millis(250);
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        read_timeout,
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let handle = server.start().expect("start");

    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\n\r\n")
        .expect("send");
    let (status, body) = read_one_response(&mut reader);
    assert_eq!(status, 200);

    // The health body exposes the reactor: this very connection is
    // registered, parked at zero worker cost.
    let health = Json::parse(&body).expect("health json");
    let reactor = health.get("reactor").expect("reactor section");
    assert!(
        reactor.get("connections").and_then(Json::as_u64) >= Some(1),
        "parked connection must show in the gauge: {body}"
    );

    // Park well past the request-read timeout. The deadline only arms
    // on the first byte of a request, so an idle keep-alive outlives it.
    std::thread::sleep(read_timeout * 4);

    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nhost: t\r\nconnection: close\r\n\r\n")
        .expect("send after parking");
    let (status, _) = read_one_response(&mut reader);
    assert_eq!(
        status, 200,
        "an idle keep-alive connection must survive the read timeout"
    );

    handle.shutdown();
}
