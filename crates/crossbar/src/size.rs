//! Size accounting across the two-terminal technologies (paper Fig. 3).

use nanoxbar_logic::{dual_cover, isop_cover, TruthTable};

use crate::diode::diode_size_formula;
use crate::fet::fet_size_formula;
use crate::topology::ArraySize;

/// Sizes of both two-terminal realisations of a function, derived from
/// irredundant covers of `f` and `f^D`.
///
/// ```
/// use nanoxbar_crossbar::two_terminal_sizes;
/// use nanoxbar_logic::parse_function;
///
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let sizes = two_terminal_sizes(&f);
/// assert_eq!(sizes.diode.to_string(), "2x5");
/// assert_eq!(sizes.fet.to_string(), "4x4");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoTerminalSizes {
    /// Diode array: `P × (L+1)`.
    pub diode: ArraySize,
    /// FET array: `L × (P + P^D)`.
    pub fet: ArraySize,
}

/// Computes both Fig. 3 sizes for `f`.
///
/// # Panics
///
/// Panics if `f` is constant (constants need no array).
pub fn two_terminal_sizes(f: &TruthTable) -> TwoTerminalSizes {
    assert!(
        !f.is_zero() && !f.is_ones(),
        "constant functions need no array"
    );
    let fc = isop_cover(f);
    let dc = dual_cover(f);
    TwoTerminalSizes {
        diode: diode_size_formula(&fc),
        fet: fet_size_formula(&fc, &dc),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_logic::parse_function;

    #[test]
    fn matches_constructed_arrays() {
        use crate::diode::DiodeArray;
        use crate::fet::FetArray;
        use nanoxbar_logic::{dual_cover, isop_cover};

        for expr in ["x0 x1 + !x0 !x1", "x0 + x1 x2", "x0 ^ x1 ^ x2"] {
            let f = parse_function(expr).unwrap();
            let sizes = two_terminal_sizes(&f);
            let diode = DiodeArray::synthesize(&isop_cover(&f));
            let fet = FetArray::synthesize(&isop_cover(&f), &dual_cover(&f));
            assert_eq!(sizes.diode, diode.size(), "{expr}");
            assert_eq!(sizes.fet, fet.size(), "{expr}");
        }
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn constant_rejected() {
        let _ = two_terminal_sizes(&TruthTable::ones(2));
    }
}
