//! Bit-packed truth tables for Boolean functions of up to [`MAX_VARS`] variables.
//!
//! A [`TruthTable`] stores one bit per input assignment (minterm), packed into
//! `u64` words. Minterm `m` encodes the assignment where input `i` equals bit
//! `i` of `m` (LSB = variable 0). All synthesis and verification code in the
//! workspace bottoms out in this representation, so it is deliberately simple
//! and exhaustively tested.

use std::fmt;

use crate::error::LogicError;

/// Maximum number of input variables supported by [`TruthTable`].
///
/// 24 variables ⇒ 2 MiB per table, which keeps exhaustive verification
/// practical while covering every function used by the paper's experiments.
pub const MAX_VARS: usize = 24;

/// A complete truth table over `num_vars` inputs.
///
/// # Examples
///
/// ```
/// use nanoxbar_logic::TruthTable;
///
/// // Majority-of-three: true when at least two inputs are true.
/// let maj = TruthTable::from_fn(3, |m| (m.count_ones() >= 2) as u64 & 1 == 1);
/// assert!(maj.value(0b011));
/// assert!(!maj.value(0b001));
/// assert_eq!(maj.count_ones(), 4);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_vars: usize,
    words: Vec<u64>,
}

/// Number of `u64` words needed for `num_vars` inputs.
///
/// This is the unit of the workspace's word-parallel engines: word `w`
/// holds minterms `64*w .. 64*w + 63`, minterm `m` living at bit `m & 63`
/// of word `m >> 6`.
pub fn word_len(num_vars: usize) -> usize {
    if num_vars >= 6 {
        1 << (num_vars - 6)
    } else {
        1
    }
}

/// Mask selecting the valid bits of the final word for tables with < 6
/// vars (all-ones for 6+ vars, where every word is fully populated).
pub fn tail_mask(num_vars: usize) -> u64 {
    if num_vars >= 6 {
        u64::MAX
    } else {
        (1u64 << (1 << num_vars)) - 1
    }
}

/// Bit patterns of the variables `x0..x5` within one 64-minterm word:
/// `LOW_VAR_WORDS[v]` has bit `m` set exactly when bit `v` of `m` is set.
const LOW_VAR_WORDS: [u64; 6] = [
    0xAAAA_AAAA_AAAA_AAAA,
    0xCCCC_CCCC_CCCC_CCCC,
    0xF0F0_F0F0_F0F0_F0F0,
    0xFF00_FF00_FF00_FF00,
    0xFFFF_0000_FFFF_0000,
    0xFFFF_FFFF_0000_0000,
];

/// The 64-minterm slice of variable `var`'s truth table at word index
/// `word`: bit `i` is set exactly when variable `var` is true under
/// minterm `64*word + i`.
///
/// Variables 0–5 toggle *within* a word (fixed bit patterns); variables 6+
/// select whole words, so the slice is all-ones or all-zeros depending on
/// bit `var - 6` of `word`. This is the primitive the word-parallel
/// lattice and fault-simulation engines build their per-site masks from:
/// `TruthTable::variable(n, v).words()[w] == variable_word(v, w)` (up to
/// the tail mask for `n < 6`).
pub fn variable_word(var: usize, word: usize) -> u64 {
    if var < 6 {
        LOW_VAR_WORDS[var]
    } else if (word >> (var - 6)) & 1 == 1 {
        u64::MAX
    } else {
        0
    }
}

impl TruthTable {
    /// Creates the constant-false function of `num_vars` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS`.
    pub fn zeros(num_vars: usize) -> Self {
        assert!(num_vars <= MAX_VARS, "too many variables: {num_vars}");
        TruthTable {
            num_vars,
            words: vec![0; word_len(num_vars)],
        }
    }

    /// Creates the constant-true function of `num_vars` inputs.
    pub fn ones(num_vars: usize) -> Self {
        let mut tt = Self::zeros(num_vars);
        for w in &mut tt.words {
            *w = u64::MAX;
        }
        *tt.words.last_mut().expect("at least one word") &= tail_mask(num_vars);
        tt
    }

    /// Builds a table by evaluating `f` on every minterm.
    pub fn from_fn<F: FnMut(u64) -> bool>(num_vars: usize, mut f: F) -> Self {
        let mut tt = Self::zeros(num_vars);
        for m in 0..(1u64 << num_vars) {
            if f(m) {
                tt.set(m, true);
            }
        }
        tt
    }

    /// Builds a table that is true exactly on the given minterms.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::MintermOutOfRange`] if any minterm does not fit
    /// in `num_vars` bits.
    pub fn from_minterms(num_vars: usize, minterms: &[u64]) -> Result<Self, LogicError> {
        let mut tt = Self::zeros(num_vars);
        for &m in minterms {
            if m >= (1u64 << num_vars) {
                return Err(LogicError::MintermOutOfRange {
                    minterm: m,
                    num_vars,
                });
            }
            tt.set(m, true);
        }
        Ok(tt)
    }

    /// The single-variable function `x_var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn variable(num_vars: usize, var: usize) -> Self {
        assert!(
            var < num_vars,
            "variable {var} out of range for {num_vars} inputs"
        );
        Self::from_fn(num_vars, |m| (m >> var) & 1 == 1)
    }

    /// Number of input variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The packed 64-minterm words, LSB-first: bit `m & 63` of word
    /// `m >> 6` is the function's value on minterm `m`. Bits beyond
    /// `2^num_vars` (only possible in the single word of a `< 6`-var
    /// table) are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Builds a table directly from packed words (the inverse of
    /// [`TruthTable::words`]). Bits beyond `2^num_vars` are cleared.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > MAX_VARS` or `words.len() != word_len(num_vars)`.
    pub fn from_words(num_vars: usize, mut words: Vec<u64>) -> Self {
        assert!(num_vars <= MAX_VARS, "too many variables: {num_vars}");
        assert_eq!(
            words.len(),
            word_len(num_vars),
            "word count mismatch for {num_vars} vars"
        );
        *words.last_mut().expect("at least one word") &= tail_mask(num_vars);
        TruthTable { num_vars, words }
    }

    /// Number of minterms (`2^num_vars`).
    pub fn num_minterms(&self) -> u64 {
        1u64 << self.num_vars
    }

    /// Value of the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn value(&self, m: u64) -> bool {
        assert!(m < self.num_minterms(), "minterm {m} out of range");
        (self.words[(m >> 6) as usize] >> (m & 63)) & 1 == 1
    }

    /// Sets the value of the function on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn set(&mut self, m: u64, value: bool) {
        assert!(m < self.num_minterms(), "minterm {m} out of range");
        let w = &mut self.words[(m >> 6) as usize];
        if value {
            *w |= 1u64 << (m & 63);
        } else {
            *w &= !(1u64 << (m & 63));
        }
    }

    /// Number of satisfying assignments.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// True if the function is constant false.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if the function is constant true (a tautology).
    pub fn is_ones(&self) -> bool {
        let n = self.words.len();
        self.words[..n - 1].iter().all(|&w| w == u64::MAX)
            && self.words[n - 1] == tail_mask(self.num_vars)
    }

    /// Iterator over the minterms on which the function is true.
    pub fn minterms(&self) -> Minterms<'_> {
        Minterms { tt: self, next: 0 }
    }

    /// Logical NOT.
    pub fn not(&self) -> Self {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        *out.words.last_mut().expect("at least one word") &= tail_mask(self.num_vars);
        out
    }

    fn binop(&self, other: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(
            self.num_vars, other.num_vars,
            "truth table arity mismatch: {} vs {}",
            self.num_vars, other.num_vars
        );
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(&a, &b)| f(a, b))
            .collect();
        let mut out = TruthTable {
            num_vars: self.num_vars,
            words,
        };
        *out.words.last_mut().expect("at least one word") &= tail_mask(self.num_vars);
        out
    }

    /// Logical AND.
    ///
    /// # Panics
    ///
    /// Panics if the tables have different arities (also for the other
    /// binary operations below).
    pub fn and(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a & b)
    }

    /// Logical OR.
    pub fn or(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a | b)
    }

    /// Logical XOR.
    pub fn xor(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a ^ b)
    }

    /// `self AND NOT other` (set difference of ON-sets).
    pub fn and_not(&self, other: &Self) -> Self {
        self.binop(other, |a, b| a & !b)
    }

    /// True if the ON-set of `self` is contained in the ON-set of `other`.
    pub fn implies(&self, other: &Self) -> bool {
        self.and_not(other).is_zero()
    }

    /// The Boolean dual `f^D(x) = ¬f(¬x)`.
    ///
    /// The dual exchanges AND/OR in any expression for `f`; it is the
    /// function whose products index the rows of a four-terminal lattice in
    /// the Altun–Riedel construction (paper, Fig. 5).
    ///
    /// Computed directly on the packed words: `m ↦ m ^ all` reverses the
    /// minterm order, so the dual is the complement of the bit-reversed
    /// table — `O(words)` instead of a per-minterm scan.
    ///
    /// ```
    /// use nanoxbar_logic::TruthTable;
    /// let f = TruthTable::from_fn(2, |m| m == 0b11); // x0 AND x1
    /// let d = f.dual();                              // x0 OR x1
    /// assert_eq!(d.count_ones(), 3);
    /// assert_eq!(d.dual(), f); // dual is an involution
    /// ```
    pub fn dual(&self) -> Self {
        let n = self.num_vars;
        let words = if n >= 6 {
            // 2^n is a multiple of 64: reverse the word order and the bits
            // within each word, then complement.
            self.words
                .iter()
                .rev()
                .map(|&w| !w.reverse_bits())
                .collect()
        } else {
            // Single word, low 2^n bits valid: reverse within 64 bits,
            // shift the table back down, complement (tail masked below).
            let width = 1u32 << n;
            vec![!(self.words[0].reverse_bits() >> (64 - width))]
        };
        Self::from_words(n, words)
    }

    /// Cofactor with variable `var` fixed to `value`; the result still has
    /// the same arity (the fixed variable becomes irrelevant).
    ///
    /// Computed on the packed words: variables `x0..x5` duplicate one
    /// in-word half over the other with a shift and mask, variables `x6+`
    /// copy whole words between block halves.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Self {
        assert!(var < self.num_vars, "variable {var} out of range");
        let mut words = self.words.clone();
        if var < 6 {
            let shift = 1u32 << var;
            let hi_mask = LOW_VAR_WORDS[var];
            for w in &mut words {
                if value {
                    let hi = *w & hi_mask;
                    *w = hi | (hi >> shift);
                } else {
                    let lo = *w & !hi_mask;
                    *w = lo | (lo << shift);
                }
            }
        } else {
            let stride = 1usize << (var - 6);
            for block in words.chunks_mut(2 * stride) {
                let (lo, hi) = block.split_at_mut(stride);
                if value {
                    lo.copy_from_slice(hi);
                } else {
                    hi.copy_from_slice(lo);
                }
            }
        }
        Self::from_words(self.num_vars, words)
    }

    /// True if the function does not depend on variable `var`.
    pub fn is_independent_of(&self, var: usize) -> bool {
        self.cofactor(var, false) == self.cofactor(var, true)
    }

    /// The set of variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.num_vars)
            .filter(|&v| !self.is_independent_of(v))
            .collect()
    }

    /// Existential quantification over `var`: `f|var=0 OR f|var=1`.
    pub fn exists(&self, var: usize) -> Self {
        self.cofactor(var, false).or(&self.cofactor(var, true))
    }

    /// Universal quantification over `var`: `f|var=0 AND f|var=1`.
    pub fn forall(&self, var: usize) -> Self {
        self.cofactor(var, false).and(&self.cofactor(var, true))
    }

    /// Removes variable `var` from the encoding, producing a table of arity
    /// `num_vars - 1`. Variables above `var` shift down by one.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::DependentVariable`] if the function depends on
    /// `var`.
    pub fn drop_var(&self, var: usize) -> Result<Self, LogicError> {
        if !self.is_independent_of(var) {
            return Err(LogicError::DependentVariable { var });
        }
        let low_mask = (1u64 << var) - 1;
        Ok(Self::from_fn(self.num_vars - 1, |m| {
            let expanded = (m & low_mask) | ((m & !low_mask) << 1);
            self.value(expanded)
        }))
    }

    /// Adds `extra` fresh (irrelevant) variables above the current ones.
    pub fn extend_vars(&self, extra: usize) -> Self {
        assert!(self.num_vars + extra <= MAX_VARS, "too many variables");
        let mask = self.num_minterms() - 1;
        Self::from_fn(self.num_vars + extra, |m| self.value(m & mask))
    }

    /// Exchanges the roles of variables `a` and `b` (a transposition of the
    /// variable order), computed with word-level delta swaps:
    ///
    /// * both variables in-word (`< 6`) — one masked delta swap per word;
    /// * one in-word, one word-selecting — a shifted exchange between the
    ///   two words of every `b`-block pair;
    /// * both word-selecting (`≥ 6`) — whole-word swaps.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is `>= num_vars`.
    pub fn swap_vars(&self, a: usize, b: usize) -> Self {
        assert!(
            a < self.num_vars && b < self.num_vars,
            "swap ({a},{b}) out of range for {} vars",
            self.num_vars
        );
        let (a, b) = (a.min(b), a.max(b));
        if a == b {
            return self.clone();
        }
        let mut words = self.words.clone();
        if b < 6 {
            // In-word: positions with x_a=1, x_b=0 trade with the position
            // `d` higher (x_a=0, x_b=1).
            let d = (1u32 << b) - (1u32 << a);
            let sel = LOW_VAR_WORDS[a] & !LOW_VAR_WORDS[b];
            for w in &mut words {
                let x = (*w ^ (*w >> d)) & sel;
                *w ^= x ^ (x << d);
            }
        } else if a < 6 {
            // Across word pairs selected by bit b-6, shifted by 2^a: the
            // x_a=1 half of the low word trades with the x_a=0 half of the
            // high word.
            let shift = 1u32 << a;
            let a_mask = LOW_VAR_WORDS[a];
            let stride = 1usize << (b - 6);
            for block in words.chunks_mut(2 * stride) {
                let (lo_half, hi_half) = block.split_at_mut(stride);
                for (lo, hi) in lo_half.iter_mut().zip(hi_half) {
                    let new_lo = (*lo & !a_mask) | ((*hi & !a_mask) << shift);
                    let new_hi = (*hi & a_mask) | ((*lo & a_mask) >> shift);
                    *lo = new_lo;
                    *hi = new_hi;
                }
            }
        } else {
            // Whole-word swaps between indices differing in bits a-6/b-6.
            let (sa, sb) = (1usize << (a - 6), 1usize << (b - 6));
            for i in 0..words.len() {
                if i & sa != 0 && i & sb == 0 {
                    words.swap(i, i + sb - sa);
                }
            }
        }
        Self::from_words(self.num_vars, words)
    }

    /// Applies a variable permutation: output variable `i` takes the role of
    /// input variable `perm[i]`.
    ///
    /// Decomposed into at most `num_vars - 1` word-level
    /// [`TruthTable::swap_vars`] transpositions instead of a per-minterm
    /// rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..num_vars`.
    pub fn permute_vars(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.num_vars, "permutation arity mismatch");
        let mut seen = vec![false; self.num_vars];
        for &p in perm {
            assert!(p < self.num_vars && !seen[p], "not a permutation");
            seen[p] = true;
        }
        // Selection "sort" by transpositions: after step i, position i
        // holds original variable perm[i].
        let mut out = self.clone();
        let mut current: Vec<usize> = (0..self.num_vars).collect();
        for (i, &target) in perm.iter().enumerate() {
            let j = current
                .iter()
                .position(|&v| v == target)
                .expect("perm verified above");
            if j != i {
                out = out.swap_vars(i, j);
                current.swap(i, j);
            }
        }
        out
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} vars; ", self.num_vars)?;
        if self.num_vars <= 6 {
            for m in (0..self.num_minterms()).rev() {
                write!(f, "{}", self.value(m) as u8)?;
            }
        } else {
            write!(f, "{} ON minterms", self.count_ones())?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Iterator over ON-set minterms, produced by [`TruthTable::minterms`].
#[derive(Debug)]
pub struct Minterms<'a> {
    tt: &'a TruthTable,
    next: u64,
}

impl Iterator for Minterms<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        while self.next < self.tt.num_minterms() {
            let m = self.next;
            self.next += 1;
            if self.tt.value(m) {
                return Some(m);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        for n in 0..8 {
            let z = TruthTable::zeros(n);
            let o = TruthTable::ones(n);
            assert!(z.is_zero());
            assert!(o.is_ones());
            assert_eq!(z.count_ones(), 0);
            assert_eq!(o.count_ones(), 1 << n);
            assert_eq!(z.not(), o);
        }
    }

    #[test]
    fn variable_tables() {
        let x1 = TruthTable::variable(3, 1);
        for m in 0..8 {
            assert_eq!(x1.value(m), (m >> 1) & 1 == 1);
        }
        assert_eq!(x1.count_ones(), 4);
    }

    #[test]
    fn from_minterms_checks_range() {
        assert!(TruthTable::from_minterms(2, &[0, 3]).is_ok());
        let err = TruthTable::from_minterms(2, &[4]).unwrap_err();
        assert!(matches!(
            err,
            LogicError::MintermOutOfRange {
                minterm: 4,
                num_vars: 2
            }
        ));
    }

    #[test]
    fn boolean_algebra_laws() {
        let a = TruthTable::from_fn(4, |m| m % 3 == 0);
        let b = TruthTable::from_fn(4, |m| m % 5 == 0);
        // De Morgan
        assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
        // XOR definition
        assert_eq!(a.xor(&b), a.and_not(&b).or(&b.and_not(&a)));
        // Implication via difference
        assert!(a.and(&b).implies(&a));
        assert!(a.implies(&a.or(&b)));
    }

    #[test]
    fn dual_involution_and_demorgan() {
        // dual(f AND g) = dual(f) OR dual(g)
        let f = TruthTable::from_fn(3, |m| m.count_ones() >= 2);
        let g = TruthTable::from_fn(3, |m| m & 1 == 1);
        assert_eq!(f.dual().dual(), f);
        assert_eq!(f.and(&g).dual(), f.dual().or(&g.dual()));
        assert_eq!(f.or(&g).dual(), f.dual().and(&g.dual()));
    }

    #[test]
    fn dual_of_paper_example() {
        // f = x1 x2 + !x1 !x2 (XNOR, paper Sec. III-A) => dual = XOR.
        let f = TruthTable::from_fn(2, |m| m == 0b11 || m == 0b00);
        let d = f.dual();
        assert_eq!(d, TruthTable::from_fn(2, |m| m == 0b01 || m == 0b10));
    }

    #[test]
    fn cofactors_and_shannon_expansion() {
        let f = TruthTable::from_fn(4, |m| (m * 7) % 16 > 7);
        for v in 0..4 {
            let f0 = f.cofactor(v, false);
            let f1 = f.cofactor(v, true);
            let x = TruthTable::variable(4, v);
            let shannon = x.and(&f1).or(&x.not().and(&f0));
            assert_eq!(shannon, f);
        }
    }

    #[test]
    fn support_and_drop_var() {
        // Function depends only on variables 0 and 2.
        let f = TruthTable::from_fn(3, |m| (m & 1 == 1) && (m >> 2) & 1 == 1);
        assert_eq!(f.support(), vec![0, 2]);
        assert!(f.is_independent_of(1));
        let g = f.drop_var(1).unwrap();
        assert_eq!(g.num_vars(), 2);
        assert_eq!(g, TruthTable::from_fn(2, |m| m == 0b11));
        assert!(f.drop_var(0).is_err());
    }

    #[test]
    fn quantification() {
        let f = TruthTable::from_fn(3, |m| m == 0b101 || m == 0b001);
        // exists x2: true whenever some value of x2 makes f true
        let e = f.exists(2);
        assert!(e.value(0b001) && e.value(0b101));
        let a = f.forall(2);
        assert!(a.value(0b001));
        assert!(!a.value(0b011));
    }

    #[test]
    fn extend_and_permute() {
        let f = TruthTable::from_fn(2, |m| m == 0b01); // x0 AND !x1
        let g = f.extend_vars(1);
        assert_eq!(g.num_vars(), 3);
        assert!(g.value(0b101) && g.value(0b001));
        let swapped = f.permute_vars(&[1, 0]);
        assert_eq!(swapped, TruthTable::from_fn(2, |m| m == 0b10));
    }

    #[test]
    fn minterm_iterator_roundtrip() {
        let f = TruthTable::from_fn(5, |m| m % 7 == 0);
        let ms: Vec<u64> = f.minterms().collect();
        let back = TruthTable::from_minterms(5, &ms).unwrap();
        assert_eq!(back, f);
        assert_eq!(ms.len() as u64, f.count_ones());
    }

    #[test]
    fn words_roundtrip_and_layout() {
        for n in [0usize, 2, 5, 6, 7, 9] {
            let f = TruthTable::from_fn(n, |m| m.wrapping_mul(0x9E3779B9) & 4 != 0);
            assert_eq!(f.words().len(), word_len(n));
            let back = TruthTable::from_words(n, f.words().to_vec());
            assert_eq!(back, f);
            // Bit m&63 of word m>>6 is the value on minterm m.
            for m in 0..f.num_minterms() {
                let bit = (f.words()[(m >> 6) as usize] >> (m & 63)) & 1 == 1;
                assert_eq!(bit, f.value(m));
            }
        }
    }

    #[test]
    fn from_words_masks_tail() {
        let t = TruthTable::from_words(2, vec![u64::MAX]);
        assert_eq!(t, TruthTable::ones(2));
        assert_eq!(t.count_ones(), 4);
    }

    #[test]
    #[should_panic(expected = "word count mismatch")]
    fn from_words_checks_length() {
        let _ = TruthTable::from_words(7, vec![0; 1]);
    }

    #[test]
    fn variable_word_matches_variable_tables() {
        for n in [3usize, 6, 8, 9] {
            for v in 0..n {
                let table = TruthTable::variable(n, v);
                for (w, &word) in table.words().iter().enumerate() {
                    assert_eq!(
                        word,
                        variable_word(v, w) & tail_mask(n),
                        "n={n} v={v} w={w}"
                    );
                }
            }
        }
    }

    /// The pre-word-parallel reference implementations (per-minterm
    /// `from_fn` scans) the word-level versions are proved against.
    mod reference {
        use super::*;

        pub fn dual(t: &TruthTable) -> TruthTable {
            let all = t.num_minterms() - 1;
            TruthTable::from_fn(t.num_vars(), |m| !t.value(m ^ all))
        }

        pub fn cofactor(t: &TruthTable, var: usize, value: bool) -> TruthTable {
            let bit = 1u64 << var;
            TruthTable::from_fn(t.num_vars(), |m| {
                let m = if value { m | bit } else { m & !bit };
                t.value(m)
            })
        }

        pub fn permute_vars(t: &TruthTable, perm: &[usize]) -> TruthTable {
            TruthTable::from_fn(t.num_vars(), |m| {
                let mut orig = 0u64;
                for (i, &p) in perm.iter().enumerate() {
                    if (m >> i) & 1 == 1 {
                        orig |= 1 << p;
                    }
                }
                t.value(orig)
            })
        }
    }

    /// Structured-random tables crossing the one-word boundary.
    fn sample_tables(n: usize) -> Vec<TruthTable> {
        let mut state = 0x5EED_0000u64 + n as u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..8)
            .map(|_| {
                let mut t = TruthTable::zeros(n);
                for w in 0..word_len(n) {
                    let r = next();
                    t.words[w] = r;
                }
                *t.words.last_mut().unwrap() &= tail_mask(n);
                t
            })
            .collect()
    }

    #[test]
    fn word_dual_matches_reference() {
        for n in [0usize, 1, 3, 5, 6, 7, 9] {
            for t in sample_tables(n) {
                assert_eq!(t.dual(), reference::dual(&t), "n={n} {t:?}");
            }
        }
    }

    #[test]
    fn word_cofactor_matches_reference() {
        for n in [1usize, 3, 5, 6, 7, 9] {
            for t in sample_tables(n) {
                for var in 0..n {
                    for value in [false, true] {
                        assert_eq!(
                            t.cofactor(var, value),
                            reference::cofactor(&t, var, value),
                            "n={n} var={var} value={value}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn word_swap_and_permute_match_reference() {
        for n in [2usize, 5, 6, 7, 9] {
            for t in sample_tables(n) {
                // Every transposition, as both swap_vars and permute_vars.
                for a in 0..n {
                    for b in 0..n {
                        let mut perm: Vec<usize> = (0..n).collect();
                        perm.swap(a, b);
                        let expect = reference::permute_vars(&t, &perm);
                        assert_eq!(t.swap_vars(a, b), expect, "n={n} swap({a},{b})");
                        assert_eq!(t.permute_vars(&perm), expect, "n={n} perm swap({a},{b})");
                    }
                }
                // A full rotation exercises the decomposition.
                let rotation: Vec<usize> = (0..n).map(|i| (i + 1) % n).collect();
                assert_eq!(
                    t.permute_vars(&rotation),
                    reference::permute_vars(&t, &rotation),
                    "n={n} rotation"
                );
            }
        }
    }

    #[test]
    fn zero_arity_tables() {
        let t = TruthTable::ones(0);
        assert!(t.value(0));
        assert_eq!(t.num_minterms(), 1);
        // dual(1) = ¬1 = 0
        assert!(t.dual().is_zero());
    }
}
