//! Fault simulation for configured crossbars.
//!
//! The single source of truth for test-mode semantics: rows are wired-AND
//! products over driven literal columns, every row is observable, and a
//! [`FabricFault`] perturbs the electrical behaviour as documented on each
//! variant. BIST coverage (Sec. IV-A) is *proved* against this simulator by
//! exhaustive fault injection.

use nanoxbar_crossbar::Crossbar;

use crate::fault::FabricFault;

/// A test stimulus: the logic value driven on each column.
pub type TestVector = Vec<bool>;

/// Simulates the fault-free row responses of a configuration under a
/// vector.
///
/// # Panics
///
/// Panics if the vector length differs from the column count.
pub fn golden_rows(config: &Crossbar, vector: &TestVector) -> Vec<bool> {
    simulate_rows(config, None, vector)
}

/// Simulates row responses with an optional injected fault.
///
/// # Panics
///
/// Panics if the vector length differs from the column count.
pub fn simulate_rows(
    config: &Crossbar,
    fault: Option<FabricFault>,
    vector: &TestVector,
) -> Vec<bool> {
    let size = config.size();
    assert_eq!(vector.len(), size.cols, "vector arity mismatch");

    // Effective column line values (column bridges and breaks first).
    let mut line = vector.clone();
    match fault {
        Some(FabricFault::BridgeCols { col }) => {
            let merged = line[col] && line[col + 1];
            line[col] = merged;
            line[col + 1] = merged;
        }
        Some(FabricFault::ColOpen { col }) => {
            // Floating column: devices on it never pull the row down.
            line[col] = true;
        }
        _ => {}
    }

    // Per-row wired-AND with crosspoint-level faults.
    let device_present = |r: usize, c: usize| -> bool {
        let programmed = config.is_programmed(r, c);
        match fault {
            Some(FabricFault::StuckOpen { row, col }) if (row, col) == (r, c) => false,
            Some(FabricFault::StuckClosed { row, col }) if (row, col) == (r, c) => true,
            _ => programmed,
        }
    };
    let device_value = |r: usize, c: usize| -> bool {
        match fault {
            Some(FabricFault::Functional { row, col }) if (row, col) == (r, c) => !line[c],
            _ => line[c],
        }
    };
    let row_product = |r: usize| -> bool {
        (0..size.cols).all(|c| !device_present(r, c) || device_value(r, c))
    };

    let mut rows: Vec<bool> = (0..size.rows).map(row_product).collect();

    match fault {
        Some(FabricFault::BridgeRows { row }) => {
            let merged = rows[row] && rows[row + 1];
            rows[row] = merged;
            rows[row + 1] = merged;
        }
        Some(FabricFault::RowOpen { row }) => {
            // Broken observation wire floats high.
            rows[row] = true;
        }
        _ => {}
    }
    rows
}

/// True if `fault` is detected by (`config`, `vector`): some observable row
/// differs from the fault-free response.
pub fn detects(config: &Crossbar, fault: FabricFault, vector: &TestVector) -> bool {
    simulate_rows(config, Some(fault), vector) != golden_rows(config, vector)
}

/// Simulates row responses on a chip with fabrication defects (multi-fault:
/// every crosspoint defect in the map is active simultaneously). Used by
/// the self-mapping (BISM) and defect-unaware-flow experiments.
///
/// # Panics
///
/// Panics if the defect map, configuration, and vector disagree on size.
pub fn simulate_with_defects(
    config: &Crossbar,
    defects: &crate::defect::DefectMap,
    vector: &TestVector,
) -> Vec<bool> {
    let size = config.size();
    assert_eq!(defects.size(), size, "defect map size mismatch");
    assert_eq!(vector.len(), size.cols, "vector arity mismatch");
    (0..size.rows)
        .map(|r| {
            (0..size.cols).all(|c| {
                let present = match defects.health(r, c) {
                    crate::defect::CrosspointHealth::Good => config.is_programmed(r, c),
                    crate::defect::CrosspointHealth::StuckOpen => false,
                    crate::defect::CrosspointHealth::StuckClosed => true,
                };
                !present || vector[c]
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_crossbar::ArraySize;

    /// 2x3 fabric: row 0 programs columns {0,1}; row 1 programs {2}.
    fn sample_config() -> Crossbar {
        let mut xb = Crossbar::new(ArraySize::new(2, 3));
        xb.set(0, 0, true);
        xb.set(0, 1, true);
        xb.set(1, 2, true);
        xb
    }

    #[test]
    fn golden_semantics_wired_and() {
        let xb = sample_config();
        assert_eq!(golden_rows(&xb, &vec![true, true, false]), vec![true, false]);
        assert_eq!(golden_rows(&xb, &vec![true, false, true]), vec![false, true]);
        // Empty row (no devices) would read 1; row 1 only depends on col 2.
    }

    #[test]
    fn stuck_open_detected_by_zero_on_its_column() {
        let xb = sample_config();
        let fault = FabricFault::StuckOpen { row: 0, col: 1 };
        // x1=0 should force row 0 low; the missing device leaves it high.
        assert!(detects(&xb, fault, &vec![true, false, true]));
        // All-ones cannot see it.
        assert!(!detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    fn stuck_closed_detected_by_zero_on_foreign_column() {
        let xb = sample_config();
        let fault = FabricFault::StuckClosed { row: 1, col: 0 };
        // Row 1 should ignore column 0; the stuck device ANDs it in.
        assert!(detects(&xb, fault, &vec![false, true, true]));
        assert!(!detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    fn bridge_rows_merges_products() {
        let xb = sample_config();
        let fault = FabricFault::BridgeRows { row: 0 };
        // x = (1,1,0): row0 golden 1, row1 golden 0; merged = 0 on both.
        let faulty = simulate_rows(&xb, Some(fault), &vec![true, true, false]);
        assert_eq!(faulty, vec![false, false]);
        assert!(detects(&xb, fault, &vec![true, true, false]));
    }

    #[test]
    fn bridge_cols_ands_line_values() {
        let xb = sample_config();
        let fault = FabricFault::BridgeCols { col: 1 };
        // x = (1,1,0): bridged cols 1,2 both read 0 -> row 0 sees x1=0.
        assert!(detects(&xb, fault, &vec![true, true, false]));
    }

    #[test]
    fn row_open_reads_high() {
        let xb = sample_config();
        let fault = FabricFault::RowOpen { row: 0 };
        // x0 = 0 forces row 0 low; break floats it high.
        assert!(detects(&xb, fault, &vec![false, true, true]));
    }

    #[test]
    fn col_open_equivalent_to_missing_devices() {
        let xb = sample_config();
        let fault = FabricFault::ColOpen { col: 2 };
        assert!(detects(&xb, fault, &vec![true, true, false]));
        assert!(!detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    fn functional_inversion_detected_at_ones() {
        let xb = sample_config();
        let fault = FabricFault::Functional { row: 0, col: 0 };
        assert!(detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    #[should_panic(expected = "vector arity mismatch")]
    fn wrong_vector_length_panics() {
        let xb = sample_config();
        let _ = golden_rows(&xb, &vec![true; 5]);
    }
}
