//! Built-in self-test generation (paper Sec. IV-A).
//!
//! The paper's BIST programs *single-term functions* in test mode so that
//! every sensitised fault propagates to an observable output, achieving
//! 100 % coverage of the logic-level fault universe with a minimal set of
//! configurations and vectors. This module generates that plan for an N×M
//! fabric:
//!
//! * **all-programmed** configuration — sensitises stuck-opens, row/column
//!   opens and functional faults;
//! * **all-empty** configuration — sensitises stuck-closeds;
//! * **single-term rotations** — each row programs exactly one crosspoint
//!   (`col = (row + k) mod M`), giving adjacent rows and columns distinct
//!   single-term products, which sensitises bridging faults. `⌈M/N⌉`
//!   rotations suffice to use every column.
//!
//! Every configuration is exercised with the all-ones vector plus `M`
//! walking-zero vectors. Coverage is verified — not assumed — by exhaustive
//! fault simulation over [`crate::fault::fault_universe`].

use nanoxbar_crossbar::{ArraySize, Crossbar};
use nanoxbar_par as par;

use crate::fault::{fault_universe, FabricFault};
use crate::fsim::{detects_with_golden, golden_rows, PackedSim, PackedVectors, TestVector};

/// One test configuration plus its stimulus set.
#[derive(Clone, Debug)]
pub struct TestConfiguration {
    /// Human-readable tag for reports.
    pub name: String,
    /// The crossbar programming used in test mode.
    pub config: Crossbar,
    /// Vectors applied in order.
    pub vectors: Vec<TestVector>,
}

/// A complete BIST plan.
#[derive(Clone, Debug)]
pub struct TestPlan {
    /// The configurations applied in order.
    pub configurations: Vec<TestConfiguration>,
}

/// Coverage results from exhaustive fault simulation.
#[derive(Clone, Debug)]
pub struct CoverageReport {
    /// Faults in the universe.
    pub total: usize,
    /// Faults detected by at least one (configuration, vector) pair.
    pub detected: usize,
    /// The faults that escaped (empty at 100 % coverage).
    pub undetected: Vec<FabricFault>,
}

impl CoverageReport {
    /// Detected fraction (1.0 = the paper's claimed 100 %).
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.detected as f64 / self.total as f64
        }
    }
}

/// The all-ones + walking-zero stimulus set for `cols` columns.
fn standard_vectors(cols: usize) -> Vec<TestVector> {
    let mut vectors = vec![vec![true; cols]];
    for c in 0..cols {
        let mut v = vec![true; cols];
        v[c] = false;
        vectors.push(v);
    }
    vectors
}

impl TestPlan {
    /// Generates the minimal plan for an N×M fabric.
    ///
    /// # Examples
    ///
    /// ```
    /// use nanoxbar_crossbar::ArraySize;
    /// use nanoxbar_reliability::bist::TestPlan;
    /// use nanoxbar_reliability::fault::fault_universe;
    ///
    /// let size = ArraySize::new(8, 8);
    /// let plan = TestPlan::generate(size);
    /// let report = plan.coverage(size, &fault_universe(size));
    /// assert_eq!(report.coverage(), 1.0);
    /// ```
    pub fn generate(size: ArraySize) -> Self {
        let (rows, cols) = (size.rows, size.cols);
        let vectors = standard_vectors(cols);
        let mut configurations = Vec::new();

        let mut all_on = Crossbar::new(size);
        for r in 0..rows {
            for c in 0..cols {
                all_on.set(r, c, true);
            }
        }
        configurations.push(TestConfiguration {
            name: "all-programmed".into(),
            config: all_on,
            vectors: vectors.clone(),
        });

        configurations.push(TestConfiguration {
            name: "all-empty".into(),
            config: Crossbar::new(size),
            vectors: vectors.clone(),
        });

        // Single-term rotations: enough shifts so every column is used by
        // some row (needed to sensitise every column bridge).
        let rotations = if cols > 1 { cols.div_ceil(rows) } else { 0 };
        for k in 0..rotations {
            let mut config = Crossbar::new(size);
            for r in 0..rows {
                config.set(r, (r + k * rows) % cols, true);
            }
            configurations.push(TestConfiguration {
                name: format!("single-term-rot{k}"),
                config,
                vectors: vectors.clone(),
            });
        }
        TestPlan { configurations }
    }

    /// The naive per-crosspoint plan (one configuration per crosspoint) —
    /// the baseline the paper's minimal plan is compared against.
    pub fn naive(size: ArraySize) -> Self {
        let vectors = standard_vectors(size.cols);
        let configurations = (0..size.rows)
            .flat_map(|r| (0..size.cols).map(move |c| (r, c)))
            .map(|(r, c)| {
                let mut config = Crossbar::new(size);
                config.set(r, c, true);
                TestConfiguration {
                    name: format!("naive-{r}-{c}"),
                    config,
                    vectors: vectors.clone(),
                }
            })
            .collect();
        TestPlan { configurations }
    }

    /// Number of configurations.
    pub fn config_count(&self) -> usize {
        self.configurations.len()
    }

    /// Total number of applied vectors across configurations.
    pub fn vector_count(&self) -> usize {
        self.configurations.iter().map(|c| c.vectors.len()).sum()
    }

    /// True if some (configuration, vector) detects the fault. The golden
    /// response of each (configuration, vector) pair is simulated once,
    /// not once per comparison.
    pub fn detects_fault(&self, fault: FabricFault) -> bool {
        self.configurations.iter().any(|tc| {
            tc.vectors
                .iter()
                .any(|v| detects_with_golden(&tc.config, fault, v, &golden_rows(&tc.config, v)))
        })
    }

    /// Exhaustive fault simulation over a fault universe, on the
    /// word-parallel path: per configuration the test vectors are packed
    /// into column bitsets and the golden row words computed once
    /// ([`PackedSim`]); each fault is then judged against all vectors at
    /// once, moving to the next configuration only if undetected so far.
    /// The universe is split into chunks judged concurrently on the
    /// [`nanoxbar_par`] pool — each fault's verdict is independent, so
    /// the report is bit-identical to [`TestPlan::coverage_scalar`] at
    /// every `NANOXBAR_THREADS` setting.
    pub fn coverage(&self, size: ArraySize, universe: &[FabricFault]) -> CoverageReport {
        let _ = size;
        // Pack every configuration's vectors and build all simulators up
        // front (one golden pass each), so the parallel fault sweep only
        // reads shared state.
        let packed: Vec<(&Crossbar, Vec<PackedVectors>)> = self
            .configurations
            .iter()
            .map(|tc| {
                let cols = tc.config.size().cols;
                (&tc.config, PackedVectors::pack(&tc.vectors, cols))
            })
            .collect();
        let sims: Vec<PackedSim> = packed
            .iter()
            .flat_map(|(config, chunks)| chunks.iter().map(|chunk| PackedSim::new(config, chunk)))
            .collect();
        let mut detected = vec![false; universe.len()];
        let chunk = par::chunk_len(universe.len(), 32);
        par::par_chunks_mut(&mut detected, chunk, |ci, seen| {
            let base = ci * chunk;
            for (k, slot) in seen.iter_mut().enumerate() {
                let fault = universe[base + k];
                *slot = sims.iter().any(|sim| sim.detect_word(fault) != 0);
            }
        });
        let undetected: Vec<FabricFault> = universe
            .iter()
            .zip(&detected)
            .filter(|&(_, &seen)| !seen)
            .map(|(&fault, _)| fault)
            .collect();
        CoverageReport {
            total: universe.len(),
            detected: universe.len() - undetected.len(),
            undetected,
        }
    }

    /// Scalar reference implementation of [`TestPlan::coverage`]: one
    /// full array re-simulation per (fault, configuration, vector).
    /// Kept as the ground truth the word-parallel path is verified
    /// against (and benchmarked against in `benches/word_parallel.rs`).
    pub fn coverage_scalar(&self, size: ArraySize, universe: &[FabricFault]) -> CoverageReport {
        let _ = size;
        let mut undetected = Vec::new();
        for &fault in universe {
            if !self.detects_fault(fault) {
                undetected.push(fault);
            }
        }
        CoverageReport {
            total: universe.len(),
            detected: universe.len() - undetected.len(),
            undetected,
        }
    }
}

/// Convenience: full coverage check for a fabric size.
pub fn full_coverage(size: ArraySize) -> CoverageReport {
    TestPlan::generate(size).coverage(size, &fault_universe(size))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_coverage_on_square_fabrics() {
        for n in [2usize, 3, 4, 6, 8] {
            let size = ArraySize::new(n, n);
            let report = full_coverage(size);
            assert_eq!(
                report.coverage(),
                1.0,
                "{n}x{n}: escaped {:?}",
                report.undetected
            );
        }
    }

    #[test]
    fn full_coverage_on_rectangular_fabrics() {
        // M == 1 fabrics are exercised separately: their row bridges are
        // functionally undetectable (identical single-column products).
        for (r, c) in [(2usize, 6usize), (6, 2), (3, 5), (5, 3), (1, 4)] {
            let size = ArraySize::new(r, c);
            let report = full_coverage(size);
            assert_eq!(
                report.coverage(),
                1.0,
                "{r}x{c}: escaped {:?}",
                report.undetected
            );
        }
    }

    #[test]
    fn config_count_is_constant_for_square_fabrics() {
        // The minimality claim: configurations don't grow with N (square
        // case), unlike the naive per-crosspoint plan.
        for n in [4usize, 8, 16] {
            let plan = TestPlan::generate(ArraySize::new(n, n));
            assert_eq!(plan.config_count(), 3, "n={n}");
            let naive = TestPlan::naive(ArraySize::new(n, n));
            assert_eq!(naive.config_count(), n * n);
        }
    }

    #[test]
    fn vector_budget_is_linear_in_columns() {
        let plan = TestPlan::generate(ArraySize::new(8, 8));
        assert_eq!(plan.vector_count(), 3 * 9);
    }

    #[test]
    fn single_column_fabric_covers_stuck_faults() {
        // M = 1: bridges between columns don't exist; row bridges are
        // functionally undetectable (identical products), which the
        // universe excludes only when R == 1. Check the stuck faults.
        let size = ArraySize::new(3, 1);
        let plan = TestPlan::generate(size);
        for fault in fault_universe(size) {
            match fault {
                FabricFault::BridgeRows { .. } => { /* undetectable when M == 1 */ }
                _ => assert!(plan.detects_fault(fault), "{fault:?} escaped"),
            }
        }
    }

    #[test]
    fn rotations_give_adjacent_rows_distinct_terms() {
        let plan = TestPlan::generate(ArraySize::new(5, 7));
        let rot = plan
            .configurations
            .iter()
            .find(|c| c.name.starts_with("single-term"))
            .unwrap();
        for r in 0..4 {
            let term_of = |row: usize| (0..7).find(|&c| rot.config.is_programmed(row, c)).unwrap();
            assert_ne!(term_of(r), term_of(r + 1));
        }
    }
}
