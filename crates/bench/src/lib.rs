//! # nanoxbar-bench
//!
//! Experiment harness regenerating every figure and evaluation claim of
//! *"Computing with Nano-Crossbar Arrays"* (DATE 2017). Each `exp_*`
//! binary prints the rows/series for one experiment from `DESIGN.md` §4;
//! `EXPERIMENTS.md` records the paper-vs-measured outcomes. The
//! `benches/` directory holds Criterion microbenchmarks of the underlying
//! algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Prints an experiment banner (id + description), so every binary's
/// output is self-identifying in logs.
pub fn banner(id: &str, title: &str) {
    println!("==========================================================");
    println!("{id}: {title}");
    println!("==========================================================");
}

/// Formats a float with two decimals for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_formats() {
        assert_eq!(f2(1.0), "1.00");
        assert_eq!(f2(2.345), "2.35");
    }
}
