//! Built-in self-mapping (paper Sec. IV-B).
//!
//! BISM places an application (an SOP cover, one product per crossbar row)
//! onto a partially defective chip, using only on-chip test feedback:
//!
//! * **Blind** — generate a random configuration, run application-dependent
//!   BIST, retry until it passes. No diagnosis hardware; fast at low defect
//!   densities, ineffective at high ones.
//! * **Greedy** — after each failed BIST, run application-dependent BISD on
//!   the used resources, remember the defective ones, and remap around
//!   them.
//! * **Hybrid** — blind for a fixed retry budget, then switch to greedy;
//!   works across global *and* local (per-chip) density variation.
//!
//! The figures of merit are the number of configuration attempts and of
//! BIST/BISD invocations until a defect-free configuration is found.

use std::collections::HashSet;

use nanoxbar_crossbar::{ArraySize, Crossbar};
use nanoxbar_logic::Cover;

use crate::defect::{CrosspointHealth, DefectMap};
use crate::fsim::{simulate_with_defects, PackedDefectSim, PackedSim, PackedVectors};

/// The application to map onto a fabric.
///
/// Literals are *logical* indices `0..columns.len()`; `columns[l]` is the
/// physical fabric column carrying logical literal `l`. Fabric columns not
/// listed are left undriven (tied high), so defects there cannot disturb
/// the mapped function — which is what lets the defect-unaware flow ignore
/// them.
#[derive(Clone, Debug)]
pub struct Application {
    /// Physical column of each logical literal.
    pub columns: Vec<usize>,
    /// Per-product logical literal sets.
    pub products: Vec<Vec<usize>>,
}

impl Application {
    /// Derives the application from an SOP cover with the canonical
    /// distinct-literal column assignment (logical literal `l` on physical
    /// column `l`).
    pub fn from_cover(cover: &Cover) -> Self {
        let literals = nanoxbar_crossbar::distinct_literals(cover);
        let products = cover
            .cubes()
            .iter()
            .map(|cube| {
                cube.literals()
                    .iter()
                    .map(|l| {
                        literals
                            .iter()
                            .position(|x| x == l)
                            .expect("cube literal in distinct set")
                    })
                    .collect()
            })
            .collect();
        Application {
            columns: (0..literals.len()).collect(),
            products,
        }
    }

    /// The same application routed through different physical columns
    /// (e.g. the recovered columns of the defect-unaware flow).
    ///
    /// # Panics
    ///
    /// Panics if fewer physical columns are supplied than logical literals
    /// exist.
    pub fn with_columns(&self, physical: &[usize]) -> Self {
        assert!(
            physical.len() >= self.columns.len(),
            "not enough physical columns"
        );
        Application {
            columns: physical[..self.columns.len()].to_vec(),
            products: self.products.clone(),
        }
    }

    /// Number of logical literal columns.
    pub fn used_cols(&self) -> usize {
        self.columns.len()
    }

    /// Number of products to place.
    pub fn product_count(&self) -> usize {
        self.products.len()
    }

    /// Physical columns product `p` must program.
    pub fn physical_needs(&self, p: usize) -> Vec<usize> {
        self.products[p].iter().map(|&l| self.columns[l]).collect()
    }
}

/// A placement of products onto fabric rows.
pub type Mapping = Vec<usize>;

/// Counters for one BISM run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BismStats {
    /// Configurations tried (including the successful one).
    pub attempts: u64,
    /// BIST invocations.
    pub bist_runs: u64,
    /// BISD invocations (greedy/hybrid only).
    pub bisd_runs: u64,
    /// Whether a working configuration was found.
    pub success: bool,
}

/// Strategy selector (paper Sec. IV-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BismStrategy {
    /// Random configurations, BIST only.
    Blind,
    /// Diagnose after every failure and avoid known-bad resources.
    Greedy,
    /// Blind for the given number of retries, then greedy.
    Hybrid {
        /// Blind attempts before switching.
        blind_retries: u64,
    },
}

impl std::fmt::Display for BismStrategy {
    /// Renders the CLI/wire spelling: `blind`, `greedy`, `hybrid:N`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BismStrategy::Blind => write!(f, "blind"),
            BismStrategy::Greedy => write!(f, "greedy"),
            BismStrategy::Hybrid { blind_retries } => write!(f, "hybrid:{blind_retries}"),
        }
    }
}

impl std::str::FromStr for BismStrategy {
    type Err = String;

    /// Parses `blind`, `greedy`, `hybrid` (5 blind retries) or `hybrid:N`.
    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "blind" => Ok(BismStrategy::Blind),
            "greedy" => Ok(BismStrategy::Greedy),
            "hybrid" => Ok(BismStrategy::Hybrid { blind_retries: 5 }),
            other => match other.strip_prefix("hybrid:") {
                Some(n) => n
                    .parse()
                    .map(|blind_retries| BismStrategy::Hybrid { blind_retries })
                    .map_err(|_| format!("bad hybrid retry count {n:?}")),
                None => Err(format!(
                    "unknown BISM strategy {other:?} (blind, greedy, hybrid[:N])"
                )),
            },
        }
    }
}

/// Builds the crossbar programming for a mapping.
pub(crate) fn program(app: &Application, mapping: &Mapping, size: ArraySize) -> Crossbar {
    let mut config = Crossbar::new(size);
    for (p, &row) in mapping.iter().enumerate() {
        for &l in &app.products[p] {
            config.set(row, app.columns[l], true);
        }
    }
    config
}

/// The BIST stimuli: all-ones plus a walking zero on every *driven*
/// physical column.
pub(crate) fn stimuli(app: &Application, cols: usize) -> Vec<Vec<bool>> {
    let mut vectors = vec![vec![true; cols]];
    for &pc in &app.columns {
        let mut v = vec![true; cols];
        v[pc] = false;
        vectors.push(v);
    }
    vectors
}

/// Packed BIST verdict for an already-programmed configuration: every
/// *used* row must respond exactly like a healthy chip on every packed
/// stimulus. The golden words come from [`PackedSim`] (a healthy chip
/// behaves exactly as programmed) and the defective words from
/// [`PackedDefectSim`] — whole-test-set word compares instead of the
/// per-vector loops of [`application_bist_scalar`].
pub(crate) fn bist_passes(
    config: &Crossbar,
    mapping: &Mapping,
    defects: &DefectMap,
    packed: &[PackedVectors],
) -> bool {
    let sim = PackedDefectSim::new(config, defects);
    let mut actual = Vec::new();
    packed.iter().all(|chunk| {
        let golden = PackedSim::new(config, chunk);
        sim.rows_into(chunk, &mut actual);
        mapping.iter().all(|&r| golden.golden()[r] == actual[r])
    })
}

/// Application-dependent BIST: pass iff every *used* row responds exactly
/// like a healthy chip would on every stimulus. Runs on the word-parallel
/// packed path; [`application_bist_scalar`] is the per-vector reference
/// it is proved bit-identical to.
pub fn application_bist(app: &Application, mapping: &Mapping, defects: &DefectMap) -> bool {
    let size = defects.size();
    let config = program(app, mapping, size);
    let packed = PackedVectors::pack(&stimuli(app, size.cols), size.cols);
    bist_passes(&config, mapping, defects, &packed)
}

/// Scalar reference for [`application_bist`]: one full-array simulation
/// per (stimulus, chip) pair.
pub fn application_bist_scalar(app: &Application, mapping: &Mapping, defects: &DefectMap) -> bool {
    let size = defects.size();
    let config = program(app, mapping, size);
    let healthy = DefectMap::healthy(size);
    let used: HashSet<usize> = mapping.iter().copied().collect();
    stimuli(app, size.cols).iter().all(|v| {
        let golden = simulate_with_defects(&config, &healthy, v);
        let actual = simulate_with_defects(&config, defects, v);
        used.iter().all(|&r| golden[r] == actual[r])
    })
}

/// The walking-zero stimuli of [`application_bisd`], packed: stimulus `k`
/// drives physical column `app.columns[k]` low.
pub(crate) fn walking_packed(app: &Application, cols: usize) -> Vec<PackedVectors> {
    let walking: Vec<Vec<bool>> = app
        .columns
        .iter()
        .map(|&pc| {
            let mut v = vec![true; cols];
            v[pc] = false;
            v
        })
        .collect();
    PackedVectors::pack(&walking, cols)
}

/// Packed BISD sweep over an already-programmed configuration; see
/// [`application_bisd`].
pub(crate) fn bisd_find(
    app: &Application,
    mapping: &Mapping,
    defects: &DefectMap,
    config: &Crossbar,
    walking: &[PackedVectors],
) -> Vec<(usize, usize, CrosspointHealth)> {
    let sim = PackedDefectSim::new(config, defects);
    let mut used: Vec<usize> = mapping.clone();
    used.sort_unstable();
    used.dedup();
    let mut actual = Vec::new();
    let mut found = Vec::new();
    // Running stimulus offset across chunks (chunk sizes are an internal
    // detail of `PackedVectors::pack`).
    let mut offset = 0;
    for chunk in walking {
        let golden = PackedSim::new(config, chunk);
        sim.rows_into(chunk, &mut actual);
        for j in 0..chunk.count() {
            let pc = app.columns[offset + j];
            for &r in &used {
                let g = (golden.golden()[r] >> j) & 1 == 1;
                let a = (actual[r] >> j) & 1 == 1;
                if g != a {
                    let health = if g {
                        // Expected high, pulled low: a device where none
                        // should be — stuck-closed at (r, pc).
                        CrosspointHealth::StuckClosed
                    } else {
                        // Expected low, read high: the programmed device
                        // is missing — stuck-open at (r, pc).
                        CrosspointHealth::StuckOpen
                    };
                    found.push((r, pc, health));
                }
            }
        }
        offset += chunk.count();
    }
    found
}

/// Application-dependent BISD: walking-zero responses localise each
/// mismatch to a (used row, physical column) resource; the mismatch
/// direction tells the fault type. Returns the defective used resources,
/// ordered by stimulus then row. Runs on the word-parallel packed path
/// (all walking-zero responses in one [`PackedDefectSim`] pass);
/// [`application_bisd_scalar`] is the per-vector reference returning the
/// same resource set.
pub fn application_bisd(
    app: &Application,
    mapping: &Mapping,
    defects: &DefectMap,
) -> Vec<(usize, usize, CrosspointHealth)> {
    let size = defects.size();
    let config = program(app, mapping, size);
    let walking = walking_packed(app, size.cols);
    bisd_find(app, mapping, defects, &config, &walking)
}

/// Scalar reference for [`application_bisd`]: one full-array simulation
/// per (walking-zero stimulus, chip) pair.
pub fn application_bisd_scalar(
    app: &Application,
    mapping: &Mapping,
    defects: &DefectMap,
) -> Vec<(usize, usize, CrosspointHealth)> {
    let size = defects.size();
    let config = program(app, mapping, size);
    let healthy = DefectMap::healthy(size);
    let used: HashSet<usize> = mapping.iter().copied().collect();
    let mut found = Vec::new();
    for &pc in &app.columns {
        let mut v = vec![true; size.cols];
        v[pc] = false;
        let golden = simulate_with_defects(&config, &healthy, &v);
        let actual = simulate_with_defects(&config, defects, &v);
        for &r in &used {
            if golden[r] != actual[r] {
                let health = if golden[r] && !actual[r] {
                    CrosspointHealth::StuckClosed
                } else {
                    CrosspointHealth::StuckOpen
                };
                found.push((r, pc, health));
            }
        }
    }
    found
}

/// A product can use a row iff no *known* defect conflicts with it.
pub(crate) fn row_compatible(
    app: &Application,
    product: usize,
    row: usize,
    known_bad: &HashSet<(usize, usize, CrosspointHealth)>,
) -> bool {
    let needed: HashSet<usize> = app.physical_needs(product).into_iter().collect();
    for &(r, c, health) in known_bad {
        if r != row || !app.columns.contains(&c) {
            continue;
        }
        match health {
            CrosspointHealth::StuckOpen if needed.contains(&c) => return false,
            CrosspointHealth::StuckClosed if !needed.contains(&c) => return false,
            _ => {}
        }
    }
    true
}

/// Runs one BISM session on a chip.
///
/// Since the staged [`crate::mapper::Mapper`] became the mapping engine,
/// this is a thin wrapper over a speculation-width-1 mapper — one
/// candidate per round, which is exactly the paper's serial algorithm
/// (and the reference the speculative widths are proved against).
///
/// # Panics
///
/// Panics if the fabric has fewer rows than the application has products
/// or does not contain the application's physical columns.
///
/// # Examples
///
/// ```
/// use nanoxbar_crossbar::ArraySize;
/// use nanoxbar_logic::{isop_cover, parse_function};
/// use nanoxbar_reliability::bism::{run_bism, Application, BismStrategy};
/// use nanoxbar_reliability::defect::DefectMap;
///
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let app = Application::from_cover(&isop_cover(&f));
/// let chip = DefectMap::random_uniform(ArraySize::new(8, 8), 0.05, 0.0, 1);
/// let stats = run_bism(&app, &chip, BismStrategy::Blind, 1000, 99);
/// assert!(stats.success);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_bism(
    app: &Application,
    defects: &DefectMap,
    strategy: BismStrategy,
    max_attempts: u64,
    seed: u64,
) -> BismStats {
    let config = crate::mapper::MapConfig {
        strategy,
        speculation: 1,
        max_attempts,
        seed,
    };
    crate::mapper::Mapper::new(app.clone(), defects.clone(), config)
        .run()
        .stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_logic::{isop_cover, parse_function};

    fn xnor_app() -> Application {
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        Application::from_cover(&isop_cover(&f))
    }

    #[test]
    fn application_extraction() {
        let app = xnor_app();
        assert_eq!(app.product_count(), 2);
        assert_eq!(app.used_cols(), 4);
        for p in &app.products {
            assert_eq!(p.len(), 2);
        }
    }

    #[test]
    fn bist_passes_on_healthy_chip() {
        let app = xnor_app();
        let chip = DefectMap::healthy(ArraySize::new(4, 4));
        assert!(application_bist(&app, &vec![0, 1], &chip));
    }

    #[test]
    fn bist_fails_on_conflicting_defect() {
        let app = xnor_app();
        let mut chip = DefectMap::healthy(ArraySize::new(4, 4));
        // Break a needed crosspoint of product 0 placed on row 0.
        let c = app.physical_needs(0)[0];
        chip.set(0, c, CrosspointHealth::StuckOpen);
        assert!(!application_bist(&app, &vec![0, 1], &chip));
        // The same chip works if product 0 moves to row 2.
        assert!(application_bist(&app, &vec![2, 1], &chip));
    }

    #[test]
    fn defects_on_undriven_columns_are_invisible() {
        let app = xnor_app();
        // Route the app through physical columns {0,2,4,6} of a wide chip.
        let routed = app.with_columns(&[0, 2, 4, 6]);
        let mut chip = DefectMap::healthy(ArraySize::new(4, 8));
        // Stuck-closed devices on undriven columns of the used rows.
        chip.set(0, 1, CrosspointHealth::StuckClosed);
        chip.set(1, 7, CrosspointHealth::StuckClosed);
        assert!(application_bist(&routed, &vec![0, 1], &chip));
    }

    #[test]
    fn bisd_localises_the_defect() {
        let app = xnor_app();
        let mut chip = DefectMap::healthy(ArraySize::new(4, 4));
        let c = app.physical_needs(1)[1];
        chip.set(1, c, CrosspointHealth::StuckOpen);
        let found = application_bisd(&app, &vec![0, 1], &chip);
        assert!(
            found.contains(&(1, c, CrosspointHealth::StuckOpen)),
            "{found:?}"
        );
    }

    #[test]
    fn bisd_detects_stuck_closed_type() {
        let app = xnor_app();
        let mut chip = DefectMap::healthy(ArraySize::new(4, 4));
        // A stuck-closed device on a driven-but-unneeded column of a used row.
        let needed: std::collections::HashSet<usize> = app.physical_needs(0).into_iter().collect();
        let c = app
            .columns
            .iter()
            .copied()
            .find(|c| !needed.contains(c))
            .unwrap();
        chip.set(0, c, CrosspointHealth::StuckClosed);
        let found = application_bisd(&app, &vec![0, 1], &chip);
        assert!(
            found.contains(&(0, c, CrosspointHealth::StuckClosed)),
            "{found:?}"
        );
    }

    #[test]
    fn blind_succeeds_quickly_on_clean_chip() {
        let app = xnor_app();
        let chip = DefectMap::healthy(ArraySize::new(8, 8));
        let stats = run_bism(&app, &chip, BismStrategy::Blind, 100, 5);
        assert!(stats.success);
        assert_eq!(stats.attempts, 1);
    }

    #[test]
    fn greedy_beats_blind_at_high_density() {
        let app = xnor_app();
        let size = ArraySize::new(16, 16);
        let mut blind_total = 0u64;
        let mut greedy_total = 0u64;
        let mut blind_failures = 0u32;
        for seed in 0..20u64 {
            let chip = DefectMap::random_uniform(size, 0.12, 0.03, seed);
            let blind = run_bism(&app, &chip, BismStrategy::Blind, 300, seed);
            let greedy = run_bism(&app, &chip, BismStrategy::Greedy, 300, seed);
            assert!(greedy.success, "greedy should cope, seed {seed}");
            if blind.success {
                blind_total += blind.attempts;
            } else {
                blind_failures += 1;
                blind_total += 300;
            }
            greedy_total += greedy.attempts;
        }
        assert!(
            greedy_total < blind_total || blind_failures > 0,
            "greedy {greedy_total} vs blind {blind_total}"
        );
    }

    #[test]
    fn hybrid_switches_after_budget() {
        let app = xnor_app();
        let size = ArraySize::new(8, 8);
        // A chip nasty enough that blind rarely wins instantly.
        let chip = DefectMap::random_uniform(size, 0.25, 0.05, 77);
        let stats = run_bism(
            &app,
            &chip,
            BismStrategy::Hybrid { blind_retries: 3 },
            500,
            3,
        );
        if stats.success && stats.attempts > 3 {
            assert!(stats.bisd_runs > 0, "greedy phase must have engaged");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let app = xnor_app();
        let chip = DefectMap::random_uniform(ArraySize::new(8, 8), 0.1, 0.02, 9);
        let a = run_bism(&app, &chip, BismStrategy::Greedy, 100, 4);
        let b = run_bism(&app, &chip, BismStrategy::Greedy, 100, 4);
        assert_eq!(a, b);
    }
}
