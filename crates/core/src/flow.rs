//! The end-to-end design flow: synthesise → recover fabric → map → test.
//!
//! The implementation lives in [`nanoxbar_engine::flow`] now (jobs with a
//! chip run it through `Engine::run`/`run_batch`); this module re-exports
//! the types and keeps [`defect_unaware_flow`] as a deprecated shim.

pub use nanoxbar_engine::flow::{FlowError, FlowReport};

use nanoxbar_logic::TruthTable;
use nanoxbar_reliability::defect::DefectMap;

/// Runs the defect-unaware flow for one function on one chip.
///
/// # Errors
///
/// [`FlowError::InsufficientFabric`] if the one-time recovered `k×k`
/// crossbar cannot hold the SOP; [`FlowError::ConstantFunction`] for
/// constants.
#[deprecated(
    since = "0.1.0",
    note = "use nanoxbar_engine::Engine::run with Job::on_chip (or \
            nanoxbar_engine::flow::defect_unaware_flow directly)"
)]
pub fn defect_unaware_flow(f: &TruthTable, chip: &DefectMap) -> Result<FlowReport, FlowError> {
    nanoxbar_engine::flow::defect_unaware_flow(f, chip)
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use nanoxbar_crossbar::ArraySize;
    use nanoxbar_logic::parse_function;

    #[test]
    fn shim_delegates_to_the_engine_flow() {
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        let chip = DefectMap::random_uniform(ArraySize::new(16, 16), 0.05, 0.02, 3);
        let report = defect_unaware_flow(&f, &chip).unwrap();
        assert!(report.bist_passed);
        assert_eq!(
            Ok(report),
            nanoxbar_engine::flow::defect_unaware_flow(&f, &chip)
        );
    }
}
