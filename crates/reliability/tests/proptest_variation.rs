//! Property suite for `variation` — the parametric-variation model the
//! analog MVM subsystem builds its resistance fields on:
//!
//! * [`ResistanceField::random`] is **deterministic per seed** (bit-equal
//!   fields on repeat draws), bounded below by the 0.05 clamp, and exactly
//!   nominal at σ = 0;
//! * the delay proxies are **monotone**: raising one site's resistance can
//!   never *shorten* a lattice's best conducting path or a diode array's
//!   best conducting row, and never changes *whether* the structure
//!   conducts (conduction is topology, resistance only prices it).

use proptest::prelude::*;

use nanoxbar_crossbar::{ArraySize, DiodeArray};
use nanoxbar_lattice::synth::dual_based;
use nanoxbar_logic::{isop_cover, TruthTable};
use nanoxbar_reliability::variation::{diode_delay, lattice_path_resistance, ResistanceField};

/// A random non-constant function of 2–3 variables (minterms 0 and 1 are
/// pinned to 1 and 0, so no draw degenerates to a constant).
fn arb_function() -> impl Strategy<Value = TruthTable> {
    (any::<u64>(), 2usize..=3).prop_map(|(bits, num_vars)| {
        TruthTable::from_fn(num_vars, |m| match m {
            0 => true,
            1 => false,
            _ => (bits >> (m % 64)) & 1 == 1,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same `(size, sigma, seed)` → the same field, bit for bit; every
    /// value respects the 0.05 clamp; σ = 0 is exactly nominal.
    #[test]
    fn resistance_fields_are_deterministic_per_seed(
        rows in 1usize..=8,
        cols in 1usize..=8,
        sigma in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let size = ArraySize::new(rows, cols);
        let a = ResistanceField::random(size, sigma, seed);
        let b = ResistanceField::random(size, sigma, seed);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(
                    a.at(r, c).to_bits(),
                    b.at(r, c).to_bits(),
                    "({}, {}) differs across identical draws",
                    r,
                    c
                );
                prop_assert!(a.at(r, c) >= 0.05, "clamp violated at ({}, {})", r, c);
            }
        }
        let nominal = ResistanceField::random(size, 0.0, seed);
        for r in 0..rows {
            for c in 0..cols {
                prop_assert_eq!(nominal.at(r, c), 1.0, "sigma 0 must be nominal");
            }
        }
    }

    /// Raising one lattice site's resistance never shortens any minterm's
    /// best top→bottom path and never changes whether the lattice
    /// conducts it.
    #[test]
    fn lattice_path_resistance_is_monotone_in_site_resistance(
        f in arb_function(),
        seed in 0u64..200,
        site in any::<usize>(),
        bump in 0.1f64..10.0,
    ) {
        let lattice = dual_based::synthesize(&f);
        let size = ArraySize::new(lattice.rows(), lattice.cols());
        let field = ResistanceField::random(size, 0.2, seed);
        let r = site % lattice.rows();
        let c = (site / lattice.rows()) % lattice.cols();
        let mut worse = field.clone();
        worse.set_at(r, c, field.at(r, c) + bump);
        for m in 0..(1u64 << f.num_vars()) {
            let before = lattice_path_resistance(&lattice, &field, m);
            let after = lattice_path_resistance(&lattice, &worse, m);
            prop_assert_eq!(
                before.is_some(),
                after.is_some(),
                "conduction of minterm {} changed with resistance",
                m
            );
            if let (Some(b), Some(a)) = (before, after) {
                prop_assert!(
                    a >= b - 1e-12,
                    "minterm {}: path got faster ({} -> {}) after raising ({}, {})",
                    m,
                    b,
                    a,
                    r,
                    c
                );
            }
        }
    }

    /// The same monotonicity for the diode array's conducting rows.
    #[test]
    fn diode_delay_is_monotone_in_site_resistance(
        f in arb_function(),
        seed in 0u64..200,
        site in any::<usize>(),
        bump in 0.1f64..10.0,
    ) {
        let array = DiodeArray::synthesize(&isop_cover(&f));
        let size = array.size();
        let field = ResistanceField::random(size, 0.2, seed);
        let r = site % size.rows;
        let c = (site / size.rows) % size.cols;
        let mut worse = field.clone();
        worse.set_at(r, c, field.at(r, c) + bump);
        for m in 0..(1u64 << f.num_vars()) {
            let before = diode_delay(&array, &field, m);
            let after = diode_delay(&array, &worse, m);
            prop_assert_eq!(
                before.is_some(),
                after.is_some(),
                "conduction of minterm {} changed with resistance",
                m
            );
            if let (Some(b), Some(a)) = (before, after) {
                prop_assert!(
                    a >= b - 1e-12,
                    "minterm {}: row got faster ({} -> {}) after raising ({}, {})",
                    m,
                    b,
                    a,
                    r,
                    c
                );
            }
        }
    }
}
