//! Property suite for the analog MVM subsystem:
//!
//! * the 4-row lane-unrolled kernel and the row-chunked parallel kernel
//!   are **bit-identical** to the strictly scalar reference across
//!   `NANOXBAR_THREADS` ∈ {1, 2, 8} — f32 reduction order never changes;
//! * the chip-independent program step keeps every device target inside
//!   `[g_min, g_max]` and reconstructs the clipped weight exactly;
//! * `ConductanceMap::build` and `execute` are deterministic per seed,
//!   for every thread count.

use proptest::prelude::*;

use nanoxbar_mvm::{
    execute, mvm_parallel, mvm_scalar, mvm_unrolled, program, ConductanceParams, MvmSpec,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The unrolled and parallel kernels equal the scalar reference bit
    /// for bit, at every thread count, including lane and chunk tails.
    #[test]
    fn kernels_are_bit_identical_across_threads(
        rows in 1usize..200,
        cols in 1usize..48,
        seed in any::<u64>(),
    ) {
        let (weights, input) = nanoxbar_mvm::random_problem(rows, cols, seed);
        let scalar = mvm_scalar(&weights, rows, cols, &input);
        prop_assert_eq!(
            &scalar,
            &mvm_unrolled(&weights, rows, cols, &input),
            "unrolled diverged at {}x{}",
            rows,
            cols
        );
        for threads in [1usize, 2, 8] {
            nanoxbar_par::set_threads(threads);
            prop_assert_eq!(
                &scalar,
                &mvm_parallel(&weights, rows, cols, &input),
                "parallel diverged at {}x{} threads={}",
                rows,
                cols,
                threads
            );
        }
        nanoxbar_par::set_threads(1);
    }

    /// Program targets stay inside the physical bounds and the
    /// differential pair reconstructs the clipped weight exactly:
    /// `(g⁺ − g⁻) / (g_max − g_min) == clamp(w, -1, 1)`.
    #[test]
    fn program_step_bounds_and_reconstructs(
        rows in 1usize..12,
        cols in 1usize..12,
        seed in any::<u64>(),
    ) {
        let (weights, _) = nanoxbar_mvm::random_problem(rows, cols, seed);
        let p = ConductanceParams::default();
        let t = program(&weights, rows, cols, p);
        let span = p.g_max - p.g_min;
        for (i, &w) in weights.iter().enumerate() {
            prop_assert!((p.g_min..=p.g_max).contains(&t.g_pos[i]));
            prop_assert!((p.g_min..=p.g_max).contains(&t.g_neg[i]));
            let rebuilt = (t.g_pos[i] - t.g_neg[i]) / span;
            let target = w.clamp(-1.0, 1.0);
            prop_assert!(
                (rebuilt - target).abs() <= 1e-6,
                "weight {} rebuilt as {}",
                target,
                rebuilt
            );
        }
    }

    /// `execute` is a pure function of the spec: repeat runs and runs at
    /// other thread counts return the same outcome bit for bit.
    #[test]
    fn execute_is_deterministic_across_threads(
        rows in 1usize..80,
        cols in 1usize..24,
        chip_seed in any::<u64>(),
        density_pct in 0u64..30,
        sigma_pct in 0u64..40,
    ) {
        let (weights, input) = nanoxbar_mvm::random_problem(rows, cols, chip_seed ^ 0x5A5A);
        let spec = MvmSpec {
            rows,
            cols,
            weights,
            input,
            chip_seed,
            p_open: density_pct as f64 / 100.0 * 0.7,
            p_closed: density_pct as f64 / 100.0 * 0.3,
            noise_sigma: sigma_pct as f32 / 100.0,
            trials: 3,
        };
        let targets = program(&spec.weights, rows, cols, ConductanceParams::default());
        nanoxbar_par::set_threads(1);
        let reference = execute(&spec, &targets).unwrap();
        prop_assert_eq!(reference.ideal.len(), rows);
        prop_assert_eq!(reference.output.len(), rows);
        prop_assert!(reference.rms_error_max >= reference.rms_error_mean);
        for threads in [2usize, 8] {
            nanoxbar_par::set_threads(threads);
            prop_assert_eq!(
                &execute(&spec, &targets).unwrap(),
                &reference,
                "outcome diverged at threads={}",
                threads
            );
        }
        nanoxbar_par::set_threads(1);
    }
}
