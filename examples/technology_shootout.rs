//! Technology shoot-out: compare diode, FET, and four-terminal lattice
//! areas across the built-in benchmark suite, plus preprocessing effects.
//!
//! Run with: `cargo run --example technology_shootout`

use nanoxbar_core::compare::compare_suite;
use nanoxbar_core::report::Table;
use nanoxbar_lattice::synth::pcircuit;
use nanoxbar_logic::suite::standard_suite;

fn main() {
    let suite = standard_suite();
    let (rows, summary) = compare_suite(&suite);

    let mut table = Table::new(&["function", "diode", "fet", "lattice", "winner"]);
    for r in &rows {
        let areas = [
            ("diode", r.diode.2),
            ("fet", r.fet.2),
            ("lattice", r.lattice.2),
        ];
        let winner = areas.iter().min_by_key(|(_, a)| *a).expect("non-empty").0;
        table.row_owned(vec![
            r.name.clone(),
            r.diode.2.to_string(),
            r.fet.2.to_string(),
            r.lattice.2.to_string(),
            winner.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "lattice wins {:.0}% of functions; geomean diode/lattice = {:.2}, \
         fet/lattice = {:.2}",
        summary.lattice_wins * 100.0,
        summary.geomean_diode_over_lattice,
        summary.geomean_fet_over_lattice
    );

    // Preprocessing teaser: pick one function where P-circuits help.
    println!("\nP-circuit decomposition on selected functions:");
    for f in suite.iter().filter(|f| f.num_vars <= 6).take(6) {
        if f.table.is_zero() || f.table.is_ones() {
            continue;
        }
        let r = pcircuit::synthesize(&f.table);
        println!(
            "  {:<12} direct {:>3} sites -> decomposed {:>3} sites (split x{})",
            f.name,
            r.direct_area,
            r.lattice.area(),
            r.split_var
        );
    }
}
