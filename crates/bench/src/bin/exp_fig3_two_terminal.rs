//! E1 — Fig. 3: size formulas for diode and FET based implementations.
//!
//! For every suite function, construct both two-terminal arrays, check that
//! the built dimensions equal the Fig. 3 formulas (`P × (L+1)` for diode,
//! `L × (P + P^D)` for FET), and verify the arrays compute the target.
//! The paper's worked example `f = x1x2 + x1'x2'` (2×5 and 4×4) leads the
//! table.

use nanoxbar_bench::banner;
use nanoxbar_core::report::Table;
use nanoxbar_crossbar::{diode_size_formula, fet_size_formula, DiodeArray, FetArray};
use nanoxbar_logic::suite::standard_suite;
use nanoxbar_logic::{dual_cover, isop_cover};

fn main() {
    banner(
        "E1 / Fig. 3",
        "two-terminal array size formulas (diode, FET)",
    );

    let mut table = Table::new(&[
        "function", "vars", "P(f)", "P(fD)", "L", "diode", "fet", "verified",
    ]);
    let mut all_ok = true;

    for f in standard_suite() {
        if f.table.is_zero() || f.table.is_ones() {
            continue;
        }
        let cover = isop_cover(&f.table);
        let dual = dual_cover(&f.table);
        let diode = DiodeArray::synthesize(&cover);
        let fet = FetArray::synthesize(&cover, &dual);

        let formula_ok = diode.size() == diode_size_formula(&cover)
            && fet.size() == fet_size_formula(&cover, &dual);
        let functional_ok = diode.computes(&f.table) && fet.computes(&f.table);
        all_ok &= formula_ok && functional_ok;

        table.row_owned(vec![
            f.name.clone(),
            f.num_vars.to_string(),
            cover.product_count().to_string(),
            dual.product_count().to_string(),
            cover.distinct_literal_count().to_string(),
            diode.size().to_string(),
            fet.size().to_string(),
            if formula_ok && functional_ok {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{}", table.render());

    println!(
        "paper worked example: f = x1x2 + x1'x2' -> diode 2x5, fet 4x4 \
         (first row above, `paper_xnor2`)"
    );
    println!(
        "formulas match constructed arrays and all arrays verified: {}",
        if all_ok { "YES" } else { "NO" }
    );
}
