//! Technology selection and unified synthesis (paper Sec. III).
//!
//! The types and the implementation live in `nanoxbar-engine` now; this
//! module re-exports them and keeps [`synthesize`] as a deprecated shim so
//! pre-engine callers still compile.

pub use nanoxbar_engine::{Realization, Technology};

use nanoxbar_logic::TruthTable;

/// Synthesises `f` on the chosen technology from irredundant SOP covers.
///
/// # Panics
///
/// Panics for constant functions on the two-terminal technologies (they
/// need no array; the lattice path returns a 1×1 constant site).
#[deprecated(
    since = "0.1.0",
    note = "use nanoxbar_engine::Engine::run (or nanoxbar_engine::synthesize for one-shots), \
            which returns typed errors instead of panicking"
)]
pub fn synthesize(f: &TruthTable, tech: Technology) -> Realization {
    synth(f, tech)
}

/// Crate-internal one-shot synthesis for the nanocomputer elements, which
/// construct provably non-constant functions and keep the historical
/// panic-on-constant contract.
pub(crate) fn synth(f: &TruthTable, tech: Technology) -> Realization {
    nanoxbar_engine::synthesize(f, tech).unwrap_or_else(|e| panic!("synthesize: {e}"))
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use nanoxbar_crossbar::ArraySize;
    use nanoxbar_logic::parse_function;

    #[test]
    fn shim_still_realises_the_paper_sizes() {
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        assert_eq!(
            synthesize(&f, Technology::Diode).size(),
            ArraySize::new(2, 5)
        );
        assert_eq!(synthesize(&f, Technology::Fet).size(), ArraySize::new(4, 4));
        assert_eq!(
            synthesize(&f, Technology::FourTerminal).size(),
            ArraySize::new(2, 2)
        );
    }

    #[test]
    #[should_panic(expected = "constant")]
    fn shim_keeps_the_historical_panic_on_constants() {
        synthesize(&TruthTable::ones(2), Technology::Diode);
    }

    #[test]
    fn shim_keeps_lattice_constants_as_1x1() {
        let r = synthesize(&TruthTable::ones(2), Technology::FourTerminal);
        assert_eq!(r.area(), 1);
    }
}
