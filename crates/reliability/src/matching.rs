//! Hopcroft–Karp maximum bipartite matching.
//!
//! The baseline *defect-aware* flow of Fig. 6(a) must re-map every
//! application onto every chip around that chip's defects; placing products
//! onto compatible rows is a bipartite matching problem, solved here with
//! Hopcroft–Karp (`O(E·√V)`).

/// A bipartite graph: `adj[u]` lists the right-side vertices reachable
/// from left vertex `u`.
#[derive(Clone, Debug)]
pub struct Bipartite {
    /// Adjacency lists of the left side.
    pub adj: Vec<Vec<usize>>,
    /// Size of the right side.
    pub right_size: usize,
}

/// A maximum matching: `pair_left[u]` is the right vertex matched to `u`.
#[derive(Clone, Debug)]
pub struct Matching {
    /// Per-left-vertex partner (`None` if unmatched).
    pub pair_left: Vec<Option<usize>>,
    /// Per-right-vertex partner.
    pub pair_right: Vec<Option<usize>>,
    /// Number of matched pairs.
    pub size: usize,
}

const INF: u32 = u32::MAX;

/// Computes a maximum matching with Hopcroft–Karp.
///
/// # Examples
///
/// ```
/// use nanoxbar_reliability::matching::{maximum_matching, Bipartite};
///
/// // Two products, three rows; product 0 fits rows {0,1}, product 1 only {0}.
/// let g = Bipartite { adj: vec![vec![0, 1], vec![0]], right_size: 3 };
/// let m = maximum_matching(&g);
/// assert_eq!(m.size, 2);
/// ```
pub fn maximum_matching(graph: &Bipartite) -> Matching {
    let n = graph.adj.len();
    let m = graph.right_size;
    let mut pair_left: Vec<Option<usize>> = vec![None; n];
    let mut pair_right: Vec<Option<usize>> = vec![None; m];
    let mut dist: Vec<u32> = vec![INF; n];

    loop {
        // BFS layering from free left vertices.
        let mut queue = std::collections::VecDeque::new();
        for u in 0..n {
            if pair_left[u].is_none() {
                dist[u] = 0;
                queue.push_back(u);
            } else {
                dist[u] = INF;
            }
        }
        let mut found_augmenting = false;
        while let Some(u) = queue.pop_front() {
            for &v in &graph.adj[u] {
                match pair_right[v] {
                    None => found_augmenting = true,
                    Some(u2) => {
                        if dist[u2] == INF {
                            dist[u2] = dist[u] + 1;
                            queue.push_back(u2);
                        }
                    }
                }
            }
        }
        if !found_augmenting {
            break;
        }
        // DFS augmentation along the layering.
        fn dfs(
            u: usize,
            graph: &Bipartite,
            dist: &mut [u32],
            pair_left: &mut [Option<usize>],
            pair_right: &mut [Option<usize>],
        ) -> bool {
            for i in 0..graph.adj[u].len() {
                let v = graph.adj[u][i];
                let advance = match pair_right[v] {
                    None => true,
                    Some(u2) => {
                        dist[u2] == dist[u] + 1 && dfs(u2, graph, dist, pair_left, pair_right)
                    }
                };
                if advance {
                    pair_left[u] = Some(v);
                    pair_right[v] = Some(u);
                    return true;
                }
            }
            dist[u] = INF;
            false
        }
        for u in 0..n {
            if pair_left[u].is_none() {
                dfs(u, graph, &mut dist, &mut pair_left, &mut pair_right);
            }
        }
    }

    let size = pair_left.iter().filter(|p| p.is_some()).count();
    Matching {
        pair_left,
        pair_right,
        size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_matching_on_identity() {
        let g = Bipartite {
            adj: (0..5).map(|i| vec![i]).collect(),
            right_size: 5,
        };
        let m = maximum_matching(&g);
        assert_eq!(m.size, 5);
        for (u, p) in m.pair_left.iter().enumerate() {
            assert_eq!(*p, Some(u));
        }
    }

    #[test]
    fn hall_violation_limits_matching() {
        // Three lefts all restricted to the same two rights.
        let g = Bipartite {
            adj: vec![vec![0, 1]; 3],
            right_size: 2,
        };
        assert_eq!(maximum_matching(&g).size, 2);
    }

    #[test]
    fn empty_graph() {
        let g = Bipartite {
            adj: vec![vec![], vec![]],
            right_size: 3,
        };
        assert_eq!(maximum_matching(&g).size, 0);
    }

    #[test]
    fn matching_is_consistent() {
        let g = Bipartite {
            adj: vec![vec![0, 1, 2], vec![0], vec![1], vec![0, 2]],
            right_size: 3,
        };
        let m = maximum_matching(&g);
        assert_eq!(m.size, 3);
        for (u, p) in m.pair_left.iter().enumerate() {
            if let Some(v) = p {
                assert_eq!(m.pair_right[*v], Some(u));
                assert!(g.adj[u].contains(v), "matched along a non-edge");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force_on_random_graphs() {
        let mut state = 0x12345u64;
        for _ in 0..30 {
            let n = 6;
            let m = 6;
            let mut adj = vec![Vec::new(); n];
            for (u, row) in adj.iter_mut().enumerate() {
                for v in 0..m {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    if state.is_multiple_of(3) {
                        row.push(v);
                    }
                }
                let _ = u;
            }
            let g = Bipartite {
                adj: adj.clone(),
                right_size: m,
            };
            let hk = maximum_matching(&g).size;
            let brute = brute_force_matching(&adj, m);
            assert_eq!(hk, brute);
        }
    }

    fn brute_force_matching(adj: &[Vec<usize>], m: usize) -> usize {
        fn rec(u: usize, adj: &[Vec<usize>], used: &mut Vec<bool>) -> usize {
            if u == adj.len() {
                return 0;
            }
            // Skip u entirely.
            let mut best = rec(u + 1, adj, used);
            for &v in &adj[u] {
                if !used[v] {
                    used[v] = true;
                    best = best.max(1 + rec(u + 1, adj, used));
                    used[v] = false;
                }
            }
            best
        }
        let mut used = vec![false; m];
        rec(0, adj, &mut used)
    }
}
