//! E-mvm — roofline of the analog MVM kernels plus a noise sweep.
//!
//! Part 1 (always): GFLOP/s of the three bit-identical f32 kernels
//! (`mvm_scalar`, `mvm_unrolled`, `mvm_parallel`) across square sizes,
//! best-of-N timing with the rep count scaled so every cell measures a
//! comparable wall-clock window. Counting 2·rows·cols flops per product,
//! the table shows where the 4-row lane unroll beats the strictly serial
//! reference (it hides the f32 add latency the scalar loop serialises
//! on) and where the `PAR_CHUNK_ROWS` fan-out starts paying for itself.
//! The acceptance claim is checked directly: at the largest size the
//! unrolled kernel must not be slower than the scalar reference.
//!
//! Part 2 (`--sweep`): the accuracy side of the roofline — one engine
//! batch of [`Job::mvm`] jobs sweeping `noise_sigma` on a fixed
//! **defect-free** chip, reporting Monte-Carlo RMS error (mean and
//! worst trial) against the ideal product. With sigma the only error
//! source the mean must grow monotonically, and a zero-noise zero-IR
//! chip must be exact up to f32 conductance quantization (rms < 1e-4;
//! the sigma-0 table row is the pure IR-drop residual of the default
//! 1 ohm/segment wire). A final defective point
//! (`p_open` 2%) shows stuck devices dominating every noise level.
//!
//! Flags: `--reps N` (timing budget multiplier, default 1),
//! `--best N` (best-of passes, default 5), `--sweep`.

use std::time::Instant;

use nanoxbar_bench::{banner, f2};
use nanoxbar_core::report::Table;
use nanoxbar_engine::{Engine, Job, MvmSpec};
use nanoxbar_mvm::{mvm_parallel, mvm_scalar, mvm_unrolled, random_problem};

/// Square sizes to sweep; the last one anchors the acceptance check.
const SIZES: [usize; 4] = [32, 64, 128, 256];

fn arg(flag: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

/// Best-of-`best` wall time of `reps` back-to-back products, in seconds.
/// The output vector is folded into a checksum so the optimiser cannot
/// discard the work.
fn time_kernel(
    kernel: impl Fn(&[f32], usize, usize, &[f32]) -> Vec<f32>,
    weights: &[f32],
    n: usize,
    input: &[f32],
    reps: usize,
    best: usize,
) -> f64 {
    let mut fastest = f64::INFINITY;
    let mut sink = 0.0f32;
    for _ in 0..best {
        let started = Instant::now();
        for _ in 0..reps {
            let out = kernel(weights, n, n, input);
            sink += out[0];
        }
        fastest = fastest.min(started.elapsed().as_secs_f64());
    }
    assert!(sink.is_finite(), "kernel produced a non-finite output");
    fastest
}

fn roofline(rep_scale: usize, best: usize) -> (f64, f64) {
    let mut table = Table::new(&[
        "size",
        "scalar GFLOP/s",
        "unrolled GFLOP/s",
        "parallel GFLOP/s",
        "unroll speedup",
    ]);
    let (mut scalar_last, mut unrolled_last) = (0.0, 0.0);
    for n in SIZES {
        let (weights, input) = random_problem(n, n, n as u64);
        // ~16M flops of work per measured window at every size.
        let reps = (8_000_000 / (2 * n * n)).max(1) * rep_scale;
        let flops = (2 * n * n * reps) as f64;
        let gflops = |secs: f64| flops / secs / 1e9;
        let scalar = gflops(time_kernel(mvm_scalar, &weights, n, &input, reps, best));
        let unrolled = gflops(time_kernel(mvm_unrolled, &weights, n, &input, reps, best));
        let parallel = gflops(time_kernel(mvm_parallel, &weights, n, &input, reps, best));
        table.row_owned(vec![
            format!("{n}x{n}"),
            f2(scalar),
            f2(unrolled),
            f2(parallel),
            format!("{:.2}x", unrolled / scalar),
        ]);
        scalar_last = scalar;
        unrolled_last = unrolled;
    }
    println!("{}", table.render());
    (scalar_last, unrolled_last)
}

/// One sweep spec: a fixed 64x48 chip, sigma the only moving part.
fn sweep_spec(noise_sigma: f32, p_open: f64, p_closed: f64) -> MvmSpec {
    let (rows, cols) = (64, 48);
    let (weights, input) = random_problem(rows, cols, 2017);
    MvmSpec {
        rows,
        cols,
        weights,
        input,
        chip_seed: 7,
        p_open,
        p_closed,
        noise_sigma,
        trials: 16,
    }
}

fn noise_sweep() {
    println!("noise sweep: defect-free 64x48 chip, 16 trials per point, one engine batch\n");
    let sigmas = [0.0f32, 0.01, 0.02, 0.05, 0.1, 0.2];
    let engine = Engine::new();
    // The sweep points plus one defective chip (2% open, 1% closed) at a
    // mid sigma, all fanned out as a single batch.
    let jobs: Vec<Job> = sigmas
        .iter()
        .map(|&s| Job::mvm(sweep_spec(s, 0.0, 0.0)))
        .chain(std::iter::once(Job::mvm(sweep_spec(0.05, 0.02, 0.01))))
        .collect();
    let results = engine.run_batch(&jobs);

    let mut table = Table::new(&["noise sigma", "defects", "rms mean", "rms worst trial"]);
    let mut previous = -1.0f64;
    for (sigma, result) in sigmas.iter().zip(&results) {
        let outcome = result
            .as_ref()
            .expect("sweep job runs")
            .mvm
            .as_ref()
            .expect("mvm job carries an outcome");
        table.row_owned(vec![
            format!("{sigma:.2}"),
            outcome.defects.to_string(),
            format!("{:.5}", outcome.rms_error_mean),
            format!("{:.5}", outcome.rms_error_max),
        ]);
        assert!(
            outcome.rms_error_mean >= previous,
            "RMS error must grow with sigma ({previous} -> {} at sigma {sigma})",
            outcome.rms_error_mean
        );
        previous = outcome.rms_error_mean;
    }
    let defective = results[sigmas.len()]
        .as_ref()
        .expect("defective job runs")
        .mvm
        .as_ref()
        .expect("mvm outcome");
    table.row_owned(vec![
        "0.05 + defects".to_string(),
        defective.defects.to_string(),
        format!("{:.5}", defective.rms_error_mean),
        format!("{:.5}", defective.rms_error_max),
    ]);
    println!("{}", table.render());
    assert!(
        defective.rms_error_mean > previous,
        "a 2%-open chip must out-err every noise-only point"
    );

    // The degenerate corner pins the model: no defects, no variation, no
    // programming noise, *and no wire resistance* -> the analog chip IS
    // the ideal product (the sigma-0 row above is the pure IR-drop
    // residual of the default 1 ohm/segment wire).
    let spec = sweep_spec(0.0, 0.0, 0.0);
    let ideal_params = nanoxbar_mvm::ConductanceParams {
        wire_resistance: 0.0,
        ..nanoxbar_mvm::ConductanceParams::default()
    };
    let targets = nanoxbar_mvm::program(&spec.weights, spec.rows, spec.cols, ideal_params);
    let outcome = nanoxbar_mvm::execute(&spec, &targets).expect("clean chip runs");
    assert!(
        outcome.rms_error_mean < 1e-4,
        "a defect-free noiseless zero-IR chip must be quantization-exact \
         (rms {} is more than the f32 conductance round-trip explains)",
        outcome.rms_error_mean
    );
    println!(
        "defect-free noiseless zero-IR chip: rms {:.2e} (f32 conductance round-trip only)",
        outcome.rms_error_mean
    );
}

fn main() {
    banner("E-mvm", "analog MVM kernel roofline and noise sweep");
    let rep_scale = arg("--reps", 1).max(1);
    let best = arg("--best", 5).max(1);
    println!(
        "sizes {SIZES:?}, best-of-{best}, rep scale {rep_scale}, pool threads {}\n",
        nanoxbar_par::threads()
    );

    let (scalar, unrolled) = roofline(rep_scale, best);
    println!(
        "largest size: unrolled {} GFLOP/s vs scalar {} GFLOP/s ({:.2}x)",
        f2(unrolled),
        f2(scalar),
        unrolled / scalar
    );
    assert!(
        unrolled >= scalar,
        "the lane-unrolled kernel must not lose to the scalar reference \
         at {}x{n} (scalar {scalar:.2} vs unrolled {unrolled:.2} GFLOP/s)",
        SIZES[SIZES.len() - 1],
        n = SIZES[SIZES.len() - 1]
    );

    if flag("--sweep") {
        println!();
        noise_sweep();
    }
}
