//! Lattice evaluation: percolation across the grid.
//!
//! * Top→bottom with 4-neighbour adjacency over ON sites — the function the
//!   lattice computes (paper Fig. 4).
//! * Left→right with 8-neighbour (king-move) adjacency over OFF sites — the
//!   planar-dual blocking paths. Evaluated on the *same* literals this
//!   yields exactly the Boolean dual `f^D`, the duality the Altun–Riedel
//!   construction (Fig. 5) is built on.
//!
//! The per-minterm functions here ([`eval_top_bottom`],
//! [`eval_left_right_king`], [`eval_dual`]) are the scalar BFS reference
//! implementations. Whole-table evaluation ([`lattice_function`],
//! [`lattice_dual_function`], [`Lattice::to_truth_table`],
//! [`Lattice::computes`]) runs on the word-parallel engine in
//! [`crate::biteval`], which processes 64 minterms per grid sweep.

use nanoxbar_logic::TruthTable;

use crate::biteval::BitEvaluator;
use crate::lattice::Lattice;

/// Evaluates the lattice top→bottom on minterm `m` (the computed function).
pub fn eval_top_bottom(lattice: &Lattice, m: u64) -> bool {
    let (rows, cols) = (lattice.rows(), lattice.cols());
    let on = |r: usize, c: usize| lattice.site(r, c).is_on(m);
    // BFS from every ON top-row site.
    let mut visited = vec![false; rows * cols];
    let mut queue: Vec<(usize, usize)> = (0..cols)
        .filter(|&c| on(0, c))
        .map(|c| (0usize, c))
        .collect();
    for &(r, c) in &queue {
        visited[r * cols + c] = true;
    }
    while let Some((r, c)) = queue.pop() {
        if r == rows - 1 {
            return true;
        }
        let mut push = |nr: usize, nc: usize, queue: &mut Vec<(usize, usize)>| {
            if !visited[nr * cols + nc] && on(nr, nc) {
                visited[nr * cols + nc] = true;
                queue.push((nr, nc));
            }
        };
        if r > 0 {
            push(r - 1, c, &mut queue);
        }
        if r + 1 < rows {
            push(r + 1, c, &mut queue);
        }
        if c > 0 {
            push(r, c - 1, &mut queue);
        }
        if c + 1 < cols {
            push(r, c + 1, &mut queue);
        }
    }
    false
}

/// Evaluates the lattice left→right on minterm `m` with 8-neighbour
/// adjacency over ON sites.
///
/// By planar duality, a lattice has **no** 4-connected top→bottom path of
/// ON sites exactly when it has an 8-connected left→right path of OFF
/// sites; [`eval_dual`] packages that into an evaluation of `f^D`.
pub fn eval_left_right_king(lattice: &Lattice, m: u64) -> bool {
    lr_king(lattice, |r, c| lattice.site(r, c).is_on(m))
}

/// Evaluates the Boolean dual `f^D` of the lattice's function on minterm
/// `m`, directly on the grid: `f^D(m) = ¬f(m̄)`, and by planar duality
/// `¬f(m̄)` holds exactly when an 8-connected left→right path of sites
/// that are OFF under `m̄` exists. (For a literal site "OFF under `m̄`"
/// equals "ON under `m`"; a constant site must be complemented.)
pub fn eval_dual(lattice: &Lattice, m: u64) -> bool {
    let mask = (1u64 << lattice.num_vars()) - 1;
    lr_king(lattice, |r, c| !lattice.site(r, c).is_on(m ^ mask))
}

/// Left→right 8-connected (king move) percolation over sites selected by
/// `on`. Generic over the site predicate so each caller's closure
/// inlines; the previous `&dyn Fn` signature forced an indirect call per
/// visited site.
fn lr_king<F: Fn(usize, usize) -> bool>(lattice: &Lattice, on: F) -> bool {
    let (rows, cols) = (lattice.rows(), lattice.cols());
    let mut visited = vec![false; rows * cols];
    let mut queue: Vec<(usize, usize)> = (0..rows)
        .filter(|&r| on(r, 0))
        .map(|r| (r, 0usize))
        .collect();
    for &(r, c) in &queue {
        visited[r * cols + c] = true;
    }
    while let Some((r, c)) = queue.pop() {
        if c == cols - 1 {
            return true;
        }
        for dr in -1i64..=1 {
            for dc in -1i64..=1 {
                if dr == 0 && dc == 0 {
                    continue;
                }
                let (nr, nc) = (r as i64 + dr, c as i64 + dc);
                if nr < 0 || nc < 0 || nr >= rows as i64 || nc >= cols as i64 {
                    continue;
                }
                let (nr, nc) = (nr as usize, nc as usize);
                if !visited[nr * cols + nc] && on(nr, nc) {
                    visited[nr * cols + nc] = true;
                    queue.push((nr, nc));
                }
            }
        }
    }
    false
}

/// The function computed by the lattice (top→bottom percolation),
/// evaluated 64 minterms at a time by the word-parallel engine
/// ([`crate::BitEvaluator`]).
pub fn lattice_function(lattice: &Lattice) -> TruthTable {
    BitEvaluator::new().function(lattice)
}

/// The dual function of the lattice, evaluated via left→right king-move
/// percolation — equals `lattice_function(..).dual()` by planar duality.
/// Word-parallel, like [`lattice_function`].
pub fn lattice_dual_function(lattice: &Lattice) -> TruthTable {
    BitEvaluator::new().dual_function(lattice)
}

impl Lattice {
    /// True if the lattice computes exactly `f` (exhaustive check,
    /// word-parallel with early exit on the first mismatching 64-minterm
    /// word).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn computes(&self, f: &TruthTable) -> bool {
        BitEvaluator::new().computes(self, f)
    }

    /// The truth table of the computed function (word-parallel).
    pub fn to_truth_table(&self) -> TruthTable {
        lattice_function(self)
    }
}

/// Checks the Altun–Riedel duality on a concrete lattice: the left→right
/// 8-connected function must equal the dual of the top→bottom function.
pub fn computes_dual_left_right(lattice: &Lattice) -> bool {
    lattice_dual_function(lattice) == lattice_function(lattice).dual()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::Site;
    use nanoxbar_logic::{parse_function, Literal};

    fn lit(v: usize) -> Site {
        Site::Literal(Literal::positive(v))
    }

    fn nlit(v: usize) -> Site {
        Site::Literal(Literal::negative(v))
    }

    #[test]
    fn single_column_is_product() {
        let l = Lattice::from_rows(3, vec![vec![lit(0)], vec![lit(1)], vec![lit(2)]]).unwrap();
        let f = parse_function("x0 x1 x2").unwrap();
        assert!(l.computes(&f));
    }

    #[test]
    fn single_row_is_sum() {
        let l = Lattice::from_rows(3, vec![vec![lit(0), lit(1), lit(2)]]).unwrap();
        let f = parse_function("x0 + x1 + x2").unwrap();
        assert!(l.computes(&f));
    }

    #[test]
    fn paper_fig4_lattice() {
        // Fig. 4 renumbered to x0..x5: columns (x0,x1,x2) and (x3,x4,x5).
        let l = Lattice::from_rows(
            6,
            vec![
                vec![lit(0), lit(3)],
                vec![lit(1), lit(4)],
                vec![lit(2), lit(5)],
            ],
        )
        .unwrap();
        let f = parse_function("x0x1x2 + x0x1x4x5 + x1x2x3x4 + x3x4x5").unwrap();
        assert!(l.computes(&f));
        assert!(computes_dual_left_right(&l));
    }

    #[test]
    fn xnor_2x2_lattice() {
        // Paper Sec. III-B: f = x0x1 + !x0!x1 fits a 2x2 lattice.
        // Columns are products of f; shared literals with dual products.
        let l = Lattice::from_rows(2, vec![vec![lit(0), nlit(1)], vec![lit(1), nlit(0)]]).unwrap();
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        assert!(l.computes(&f));
        assert!(computes_dual_left_right(&l));
    }

    #[test]
    fn constants_and_literals() {
        assert!(Lattice::constant(2, true).computes(&TruthTable::ones(2)));
        assert!(Lattice::constant(2, false).computes(&TruthTable::zeros(2)));
        let l = Lattice::single_literal(2, Literal::negative(1));
        assert!(l.computes(&parse_function("!x1").unwrap()));
    }

    #[test]
    fn padding_preserves_function() {
        let l = Lattice::from_rows(3, vec![vec![lit(0), nlit(1)], vec![lit(2), lit(1)]]).unwrap();
        let f = l.to_truth_table();
        assert_eq!(l.pad_to_rows(4).to_truth_table(), f);
        assert_eq!(l.pad_to_cols(5).to_truth_table(), f);
        assert_eq!(l.pad_to_rows(5).pad_to_cols(4).to_truth_table(), f);
    }

    #[test]
    fn duality_holds_on_random_lattices() {
        // The planar-duality theorem must hold for *every* lattice, not just
        // synthesised ones.
        let mut state = 0x1BADB002u64;
        for _ in 0..40 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let rows = 1 + (state % 4) as usize;
            let cols = 1 + ((state >> 8) % 4) as usize;
            let n = 4;
            let mut grid = Vec::new();
            let mut s = state;
            for _ in 0..rows {
                let mut row = Vec::new();
                for _ in 0..cols {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    let site = match s % 10 {
                        0 => Site::Const(false),
                        1 => Site::Const(true),
                        _ => Site::Literal(Literal::new(
                            ((s >> 16) % n as u64) as usize,
                            s & (1 << 32) != 0,
                        )),
                    };
                    row.push(site);
                }
                grid.push(row);
            }
            let l = Lattice::from_rows(n, grid).unwrap();
            assert!(
                computes_dual_left_right(&l),
                "duality failed for lattice\n{l}"
            );
        }
    }

    #[test]
    fn blocked_lattice_computes_zero() {
        let l = Lattice::from_rows(
            2,
            vec![vec![lit(0)], vec![Site::Const(false)], vec![lit(1)]],
        )
        .unwrap();
        assert!(l.to_truth_table().is_zero());
    }
}
