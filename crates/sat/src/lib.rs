//! # nanoxbar-sat
//!
//! A from-scratch CDCL SAT solver, built as a substrate for the `nanoxbar`
//! reproduction of *"Computing with Nano-Crossbar Arrays"* (DATE 2017).
//! The optimal four-terminal lattice synthesis the paper cites (Gange,
//! Søndergaard, Stuckey — ref \[9\]) is SAT-based; since the workspace builds
//! every dependency itself, this crate provides the solver: two-watched
//! literals, first-UIP learning, VSIDS + phase saving, Luby restarts,
//! learnt-clause reduction, and incremental assumptions.
//!
//! ## Quickstart
//!
//! ```
//! use nanoxbar_sat::{Cnf, Solver, SolveResult};
//!
//! let mut cnf = Cnf::new();
//! let a = cnf.fresh_var().positive();
//! let b = cnf.fresh_var().positive();
//! cnf.add_clause([a, b]);
//! cnf.add_clause([!a, b]);
//! let mut solver = Solver::from_cnf(&cnf);
//! assert!(solver.solve().is_sat());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
pub mod encode;
mod lit;
mod solver;

pub use cnf::Cnf;
pub use lit::{LBool, Lit, Var};
pub use solver::{SolveResult, Solver, SolverStats};
