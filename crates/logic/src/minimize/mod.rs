//! Two-level SOP minimisation.
//!
//! The paper implements Boolean functions in SOP form, so the quality of the
//! SOP directly sets the crossbar area (Fig. 3 and Fig. 5 formulas). Two
//! minimisers are provided:
//!
//! * [`quine_mccluskey`] — exact minimum-cardinality covers via prime
//!   generation plus branch-and-bound set covering; practical up to ~12
//!   variables;
//! * [`espresso`] — an Espresso-style EXPAND / IRREDUNDANT / REDUCE loop
//!   that scales further and usually matches the exact result on the
//!   paper-scale functions.
//!
//! * [`minimize_multi_output`] — greedy shared-product minimisation for
//!   multi-output PLAs (one row per distinct product).
//!
//! The single-output minimisers accept don't-care sets, which the
//! P-circuit decomposition of Sec. III-B-1 exploits.

mod espresso;
mod multi;
mod qm;

pub use espresso::{espresso, espresso_exact_interval, EspressoOptions};
pub use multi::{minimize_multi_output, MultiCover};
pub use qm::{prime_implicants, qm_interval, quine_mccluskey, MinimizeObjective};

use crate::cover::Cover;
use crate::truth_table::TruthTable;

/// Minimises a completely specified function with the best available method
/// for its size: exact QM for small arities, Espresso beyond.
///
/// # Examples
///
/// ```
/// use nanoxbar_logic::{minimize, parse_function};
/// let f = parse_function("x0 x1 x2 + x0 x1 !x2 + !x0 x1")?;
/// let sop = minimize::minimize_function(&f);
/// assert_eq!(sop.product_count(), 1); // collapses to x1
/// assert!(sop.computes(&f));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn minimize_function(f: &TruthTable) -> Cover {
    let dc = TruthTable::zeros(f.num_vars());
    minimize_with_dc(f, &dc)
}

/// Minimises with an explicit don't-care set.
///
/// # Panics
///
/// Panics if the ON-set intersects the DC-set or arities differ.
pub fn minimize_with_dc(on: &TruthTable, dc: &TruthTable) -> Cover {
    assert_eq!(on.num_vars(), dc.num_vars(), "arity mismatch");
    assert!(on.and(dc).is_zero(), "ON-set and DC-set must be disjoint");
    if on.num_vars() <= 10 {
        quine_mccluskey(on, dc, MinimizeObjective::FewestProductsThenLiterals)
    } else {
        espresso(on, dc, &EspressoOptions::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_function;

    #[test]
    fn dispatcher_produces_equivalent_minimal_covers() {
        let f = parse_function("x0 x1 + x0 !x1 + !x0 x1").unwrap(); // = x0 + x1
        let sop = minimize_function(&f);
        assert!(sop.computes(&f));
        assert_eq!(sop.product_count(), 2);
        assert_eq!(sop.literal_count(), 2);
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn overlapping_dc_panics() {
        let on = TruthTable::from_minterms(2, &[1]).unwrap();
        let dc = TruthTable::from_minterms(2, &[1, 2]).unwrap();
        let _ = minimize_with_dc(&on, &dc);
    }
}
