//! Hand-rolled JSON encode/decode for the service wire format.
//!
//! The workspace's vendored-deps policy (no crates.io) rules out `serde`,
//! and the service's payloads are small and flat, so this module
//! implements exactly the JSON subset the wire needs: the [`Json`] value
//! tree, a recursive-descent parser with a depth limit, and a
//! deterministic encoder (object keys keep insertion order, so equal
//! values encode to byte-identical text — the property the load
//! generator's bit-identity check and the cache acceptance test rely on).
//!
//! Numbers are split into [`Json::Int`] (`i64`, exact — seeds and counts)
//! and [`Json::Float`] (`f64`, shortest-roundtrip encoding). Floats always
//! encode with a `.` or exponent so they re-parse as floats; non-finite
//! floats encode as `null` (JSON has no spelling for them).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fraction or exponent, kept exact.
    Int(i64),
    /// A fractional or exponent number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion-ordered (no key dedup on parse — last wins on
    /// [`Json::get`] lookups of duplicate keys is *not* provided, first
    /// wins, matching the encoder's determinism).
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The integer payload as a `u64`, if integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Parses one JSON document (trailing garbage is an error).
    ///
    /// # Errors
    ///
    /// [`WireError`] with a byte offset and message on malformed input,
    /// nesting beyond 64 levels, or lone surrogates in `\u` escapes.
    pub fn parse(text: &str) -> Result<Json, WireError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Encodes the value as compact JSON text (deterministic: equal values
    /// produce byte-identical output).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(x) => {
                if x.is_finite() {
                    let text = format!("{x}");
                    out.push_str(&text);
                    // `5f64` displays as "5"; force a float spelling so the
                    // value round-trips as Float, not Int.
                    if !text.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}

impl From<usize> for Json {
    fn from(i: usize) -> Self {
        Json::Int(i as i64)
    }
}

impl From<u64> for Json {
    fn from(i: u64) -> Self {
        Json::Int(i as i64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON syntax error with its byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for WireError {}

/// Maximum nesting depth the parser accepts.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> WireError {
        WireError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), WireError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, WireError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {text:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, WireError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, WireError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos += chunk.len();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `u` is already consumed),
    /// combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, WireError> {
        let first = self.hex4()?;
        if (0xD800..0xDC00).contains(&first) {
            // High surrogate: a low surrogate escape must follow.
            if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                self.pos += 2;
                let low = self.hex4()?;
                if !(0xDC00..0xE000).contains(&low) {
                    return Err(self.err("expected low surrogate"));
                }
                let c = 0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00);
                return char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"));
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xDC00..0xE000).contains(&first) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.err("invalid \\u escape"))
    }

    fn hex4(&mut self) -> Result<u32, WireError> {
        let mut value = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            value = value * 16 + digit;
            self.pos += 1;
        }
        Ok(value)
    }

    fn number(&mut self) -> Result<Json, WireError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_digits = self.digits()?;
        if int_digits > 1 && self.bytes[start + usize::from(self.bytes[start] == b'-')] == b'0' {
            return Err(self.err("leading zero"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("number out of range"))
        } else {
            // Integers overflowing i64 fall back to f64 rather than erroring
            // (matches common JSON parsers; precision loss is the caller's
            // lookout at that magnitude).
            match text.parse::<i64>() {
                Ok(i) => Ok(Json::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.err("number out of range")),
            }
        }
    }

    fn digits(&mut self) -> Result<usize, WireError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected digits"));
        }
        Ok(self.pos - start)
    }
}

/// Length of a UTF-8 sequence from its first byte (input comes from a
/// `&str`, so the byte is a valid leading byte).
fn utf8_len(byte: u8) -> usize {
    match byte {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Convenience constructor for object literals.
pub fn object(members: Vec<(&str, Json)>) -> Json {
    Json::Object(
        members
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.encode();
        let back = Json::parse(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&back, v, "{text}");
    }

    #[test]
    fn scalars_roundtrip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Int(0),
            Json::Int(-1),
            Json::Int(i64::MAX),
            Json::Int(i64::MIN),
            Json::Float(0.5),
            Json::Float(-1.25e-9),
            Json::Float(5.0),
            Json::Str(String::new()),
            Json::Str("hello \"world\"\n\t\\ \u{1F600} \u{7}".to_string()),
        ] {
            roundtrip(&v);
        }
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&Json::Array(vec![]));
        roundtrip(&object(vec![]));
        roundtrip(&object(vec![
            ("a", Json::Array(vec![Json::Int(1), Json::Null])),
            ("b", object(vec![("nested", Json::Bool(false))])),
            ("weird key \" \\", Json::Float(1e300)),
        ]));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v =
            Json::parse(" { \"a\" : [ 1 , 2.5 , \"\\u0041\\u00e9\\ud83d\\ude00\" ] } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_str(),
            Some("Aé😀")
        );
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_i64(), Some(1));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "\"\\q\"",
            "\"\\ud800\"",
            "1 2",
            "nan",
            "+1",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn floats_never_reparse_as_ints() {
        let text = Json::Float(5.0).encode();
        assert_eq!(text, "5.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(5.0));
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
    }

    #[test]
    fn encoding_is_deterministic() {
        let v = object(vec![("b", Json::Int(1)), ("a", Json::Int(2))]);
        assert_eq!(v.encode(), "{\"b\":1,\"a\":2}", "insertion order kept");
        assert_eq!(v.encode(), v.clone().encode());
    }
}
