//! Word-parallel (bit-sliced) lattice evaluation: 64 minterms per grid
//! sweep.
//!
//! # Bit-slicing layout
//!
//! The engine adopts [`TruthTable`]'s packed layout: minterm `m` lives at
//! bit `m & 63` of word `m >> 6`, so one `u64` carries the lattice's
//! behaviour on 64 consecutive input assignments at once. For each word
//! index `w`, every site gets a 64-bit **on-mask** — the slice of its
//! control literal's truth table ([`nanoxbar_logic::variable_word`]):
//! bit `i` of site `(r, c)`'s mask says whether the switch conducts under
//! minterm `64*w + i`. Variables `x0..x5` toggle inside a word (fixed
//! patterns such as `0xAAAA…`); variables `x6+` select whole words, so
//! their masks are all-ones or all-zeros per word.
//!
//! # Word-wise percolation
//!
//! Top→bottom evaluation asks, per minterm, whether a 4-connected path of
//! ON switches joins the top and bottom plates. Bit-sliced, each site
//! carries a **reach word** — the set of minterms for which the site is
//! connected to the top plate through ON switches. Row 0 seeds
//! `reach = mask`; interior sites satisfy the fixpoint equation
//!
//! ```text
//! reach[r][c] = mask[r][c] & (reach[up] | reach[down] | reach[left] | reach[right])
//! ```
//!
//! which the engine solves by monotone Gauss–Seidel sweeps (alternating
//! forward/backward over rows, with in-row carry passes both directions)
//! until nothing changes; the answer word is the union of the bottom
//! row's reach. Left→right king-move percolation — the planar-dual
//! evaluation of paper Fig. 5 — is the same computation transposed, with
//! the 8-neighbour adjacency and column 0 as the seed.
//!
//! Sweeps converge in `O(longest shortest path)` iterations (1–3 for
//! practically every lattice, including all synthesised ones) and each
//! sweep is a handful of AND/OR/shift-free word operations per site, so a
//! full truth table costs roughly `sites × sweeps` word-ops per 64
//! minterms — replacing 64 scalar BFS traversals, their visited-vector
//! allocations, and their per-site closure dispatch.
//!
//! The scalar BFS evaluators in [`crate::eval`] are retained as the
//! reference implementation; the property suite in
//! `tests/word_parallel_equivalence.rs` proves both paths bit-identical.

use nanoxbar_logic::{tail_mask, variable_word, word_len, TruthTable};

use crate::lattice::{Lattice, Site};

/// The 64-minterm on-mask of a site at word index `word` (the predicate
/// `site.is_on(m)` bit-sliced).
fn site_word(site: Site, word: usize) -> u64 {
    match site {
        Site::Literal(l) => {
            let base = variable_word(l.var(), word);
            if l.is_positive() {
                base
            } else {
                !base
            }
        }
        Site::Const(true) => u64::MAX,
        Site::Const(false) => 0,
    }
}

/// The on-mask of the *dual* predicate `!site.is_on(m ^ all_ones)`.
///
/// For a literal, complementing every input and then negating the result
/// cancels out (`!(x̄_v) = x_v`), so the mask equals the plain
/// [`site_word`]; a constant site must be complemented.
fn dual_site_word(site: Site, word: usize) -> u64 {
    match site {
        Site::Literal(_) => site_word(site, word),
        Site::Const(b) => site_word(Site::Const(!b), word),
    }
}

/// Which bit-sliced site predicate a percolation pass evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MaskKind {
    /// `site.is_on(m)` — the computed function's switches.
    On,
    /// `!site.is_on(m ^ all)` — the Boolean-dual evaluation of
    /// [`crate::eval::eval_dual`].
    Dual,
}

/// Reusable word-parallel evaluator.
///
/// Holds the per-site mask and reach scratch buffers so that evaluating
/// many words (a whole truth table, or many lattices of similar size)
/// performs no per-call allocation — the buffers are resized once and
/// reused.
///
/// # Examples
///
/// ```
/// use nanoxbar_lattice::{BitEvaluator, Lattice, Site};
/// use nanoxbar_logic::{parse_function, Literal};
///
/// let lit = |v: usize| Site::Literal(Literal::positive(v));
/// let lattice = Lattice::from_rows(2, vec![
///     vec![lit(0), Site::Literal(Literal::negative(1))],
///     vec![lit(1), Site::Literal(Literal::negative(0))],
/// ])?;
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let mut eval = BitEvaluator::new();
/// assert_eq!(eval.function(&lattice), f);
/// assert!(eval.computes(&lattice, &f));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitEvaluator {
    /// Per-site on-masks for the word being evaluated (row-major).
    masks: Vec<u64>,
    /// Per-site reach words (row-major).
    reach: Vec<u64>,
}

impl BitEvaluator {
    /// A fresh evaluator with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills `self.masks` for `word` under the given predicate.
    fn fill_masks(&mut self, lattice: &Lattice, word: usize, kind: MaskKind) {
        let (rows, cols) = (lattice.rows(), lattice.cols());
        self.masks.clear();
        self.masks.reserve(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let site = lattice.site(r, c);
                self.masks.push(match kind {
                    MaskKind::On => site_word(site, word),
                    MaskKind::Dual => dual_site_word(site, word),
                });
            }
        }
    }

    /// Relaxes one interior row (4-neighbour adjacency); returns whether
    /// any reach word grew.
    fn relax_row_tb(&mut self, r: usize, rows: usize, cols: usize) -> bool {
        let base = r * cols;
        let mut changed = false;
        let mut carry = 0u64;
        for c in 0..cols {
            let m = self.masks[base + c];
            let up = self.reach[base - cols + c];
            let down = if r + 1 < rows {
                self.reach[base + cols + c]
            } else {
                0
            };
            let old = self.reach[base + c];
            let t = m & (up | down | old | carry);
            if t != old {
                self.reach[base + c] = t;
                changed = true;
            }
            carry = t;
        }
        let mut carry = 0u64;
        for c in (0..cols).rev() {
            let old = self.reach[base + c];
            let t = old | (self.masks[base + c] & carry);
            if t != old {
                self.reach[base + c] = t;
                changed = true;
            }
            carry = t;
        }
        changed
    }

    /// Word-parallel top→bottom percolation over the masks currently in
    /// `self.masks`; returns the 64-minterm result word (unmasked).
    fn percolate_top_bottom(&mut self, rows: usize, cols: usize) -> u64 {
        self.reach.clear();
        self.reach.extend_from_slice(&self.masks[..cols]);
        self.reach.resize(rows * cols, 0);
        loop {
            let mut changed = false;
            for r in 1..rows {
                changed |= self.relax_row_tb(r, rows, cols);
            }
            for r in (1..rows).rev() {
                changed |= self.relax_row_tb(r, rows, cols);
            }
            if !changed {
                break;
            }
        }
        let bottom = (rows - 1) * cols;
        self.reach[bottom..bottom + cols]
            .iter()
            .fold(0, |acc, &w| acc | w)
    }

    /// Relaxes one interior column (8-neighbour king adjacency); returns
    /// whether any reach word grew.
    fn relax_col_lr(&mut self, c: usize, rows: usize, cols: usize) -> bool {
        let mut changed = false;
        let mut carry = 0u64;
        for r in 0..rows {
            let idx = r * cols + c;
            let m = self.masks[idx];
            let mut gather = self.reach[idx] | carry;
            // Left and right columns, rows r-1 ..= r+1 (king moves).
            for nr in r.saturating_sub(1)..=(r + 1).min(rows - 1) {
                gather |= self.reach[nr * cols + c - 1];
                if c + 1 < cols {
                    gather |= self.reach[nr * cols + c + 1];
                }
            }
            if r + 1 < rows {
                gather |= self.reach[idx + cols];
            }
            let old = self.reach[idx];
            let t = m & gather;
            if t != old {
                self.reach[idx] = t;
                changed = true;
            }
            carry = t;
        }
        let mut carry = 0u64;
        for r in (0..rows).rev() {
            let idx = r * cols + c;
            let old = self.reach[idx];
            let t = old | (self.masks[idx] & carry);
            if t != old {
                self.reach[idx] = t;
                changed = true;
            }
            carry = t;
        }
        changed
    }

    /// Word-parallel left→right king-move percolation over the masks
    /// currently in `self.masks`; returns the result word (unmasked).
    fn percolate_left_right_king(&mut self, rows: usize, cols: usize) -> u64 {
        self.reach.clear();
        self.reach.resize(rows * cols, 0);
        for r in 0..rows {
            self.reach[r * cols] = self.masks[r * cols];
        }
        loop {
            let mut changed = false;
            for c in 1..cols {
                changed |= self.relax_col_lr(c, rows, cols);
            }
            for c in (1..cols).rev() {
                changed |= self.relax_col_lr(c, rows, cols);
            }
            if !changed {
                break;
            }
        }
        (0..rows)
            .map(|r| self.reach[r * cols + cols - 1])
            .fold(0, |acc, w| acc | w)
    }

    /// The lattice's function on minterms `64*word .. 64*word + 63` as one
    /// packed word (top→bottom percolation; invalid tail bits cleared).
    pub fn top_bottom_word(&mut self, lattice: &Lattice, word: usize) -> u64 {
        self.fill_masks(lattice, word, MaskKind::On);
        self.percolate_top_bottom(lattice.rows(), lattice.cols()) & tail_mask(lattice.num_vars())
    }

    /// The left→right king-move percolation word over ON sites (the
    /// bit-sliced [`crate::eval::eval_left_right_king`]).
    pub fn left_right_king_word(&mut self, lattice: &Lattice, word: usize) -> u64 {
        self.fill_masks(lattice, word, MaskKind::On);
        self.percolate_left_right_king(lattice.rows(), lattice.cols())
            & tail_mask(lattice.num_vars())
    }

    /// The Boolean dual `f^D` on one packed word (the bit-sliced
    /// [`crate::eval::eval_dual`]).
    pub fn dual_word(&mut self, lattice: &Lattice, word: usize) -> u64 {
        self.fill_masks(lattice, word, MaskKind::Dual);
        self.percolate_left_right_king(lattice.rows(), lattice.cols())
            & tail_mask(lattice.num_vars())
    }

    /// The complete truth table of the computed function, one percolation
    /// per 64 minterms.
    pub fn function(&mut self, lattice: &Lattice) -> TruthTable {
        let n = lattice.num_vars();
        let words = (0..word_len(n))
            .map(|w| self.top_bottom_word(lattice, w))
            .collect();
        TruthTable::from_words(n, words)
    }

    /// The complete truth table of the dual function `f^D`.
    pub fn dual_function(&mut self, lattice: &Lattice) -> TruthTable {
        let n = lattice.num_vars();
        let words = (0..word_len(n))
            .map(|w| self.dual_word(lattice, w))
            .collect();
        TruthTable::from_words(n, words)
    }

    /// True if the lattice computes exactly `f`, comparing word by word
    /// with early exit on the first mismatch.
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn computes(&mut self, lattice: &Lattice, f: &TruthTable) -> bool {
        assert_eq!(lattice.num_vars(), f.num_vars(), "arity mismatch");
        f.words()
            .iter()
            .enumerate()
            .all(|(w, &fw)| self.top_bottom_word(lattice, w) == fw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_dual, eval_left_right_king, eval_top_bottom};
    use nanoxbar_logic::Literal;

    /// Deterministic xorshift for structured-random grids.
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_lattice(state: &mut u64, num_vars: usize) -> Lattice {
        let rows = 1 + (next(state) % 5) as usize;
        let cols = 1 + (next(state) % 5) as usize;
        let grid = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| match next(state) % 8 {
                        0 => Site::Const(false),
                        1 => Site::Const(true),
                        s => Site::Literal(Literal::new(
                            (next(state) % num_vars as u64) as usize,
                            s & 1 == 0,
                        )),
                    })
                    .collect()
            })
            .collect();
        Lattice::from_rows(num_vars, grid).unwrap()
    }

    #[test]
    fn site_words_match_scalar_is_on() {
        let sites = [
            Site::Const(false),
            Site::Const(true),
            Site::Literal(Literal::positive(0)),
            Site::Literal(Literal::negative(3)),
            Site::Literal(Literal::positive(7)),
            Site::Literal(Literal::negative(8)),
        ];
        for site in sites {
            for w in 0..word_len(9) {
                let mask = site_word(site, w);
                let dual = dual_site_word(site, w);
                for bit in 0..64 {
                    let m = (w as u64) * 64 + bit;
                    assert_eq!((mask >> bit) & 1 == 1, site.is_on(m), "{site:?} m={m}");
                    let all = (1u64 << 9) - 1;
                    assert_eq!(
                        (dual >> bit) & 1 == 1,
                        !site.is_on(m ^ all),
                        "{site:?} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn word_engine_matches_scalar_bfs_on_random_grids() {
        let mut state = 0xD1CE_D00Du64;
        let mut eval = BitEvaluator::new();
        for round in 0..60 {
            // Cross the 6-variable word boundary in both directions.
            let n = 1 + (round % 8);
            let l = random_lattice(&mut state, n);
            let scalar_tb = TruthTable::from_fn(n, |m| eval_top_bottom(&l, m));
            let scalar_lr = TruthTable::from_fn(n, |m| eval_left_right_king(&l, m));
            let scalar_dual = TruthTable::from_fn(n, |m| eval_dual(&l, m));
            assert_eq!(eval.function(&l), scalar_tb, "tb mismatch on\n{l}");
            let lr_words: Vec<u64> = (0..word_len(n))
                .map(|w| eval.left_right_king_word(&l, w))
                .collect();
            assert_eq!(
                TruthTable::from_words(n, lr_words),
                scalar_lr,
                "lr mismatch on\n{l}"
            );
            assert_eq!(eval.dual_function(&l), scalar_dual, "dual mismatch on\n{l}");
            assert!(eval.computes(&l, &scalar_tb));
            assert!(!eval.computes(&l, &scalar_tb.not()) || scalar_tb == scalar_tb.not());
        }
    }

    #[test]
    fn snake_paths_converge() {
        // A serpentine single path exercises many sweep iterations: the
        // path runs right along row 0, down, left along row 2, down,
        // right along row 4...
        let n = 1;
        let on = Site::Const(true);
        let off = Site::Const(false);
        let rows = 9;
        let cols = 7;
        let grid: Vec<Vec<Site>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        if r % 2 == 0 {
                            on
                        } else if (r / 2) % 2 == 0 {
                            if c == cols - 1 {
                                on
                            } else {
                                off
                            }
                        } else if c == 0 {
                            on
                        } else {
                            off
                        }
                    })
                    .collect()
            })
            .collect();
        let l = Lattice::from_rows(n, grid).unwrap();
        let mut eval = BitEvaluator::new();
        assert_eq!(
            eval.function(&l),
            TruthTable::from_fn(n, |m| eval_top_bottom(&l, m))
        );
    }

    #[test]
    fn single_row_and_column_edge_cases() {
        let mut eval = BitEvaluator::new();
        let l = Lattice::from_rows(
            7,
            vec![vec![
                Site::Literal(Literal::positive(6)),
                Site::Literal(Literal::positive(0)),
            ]],
        )
        .unwrap();
        assert_eq!(
            eval.function(&l),
            TruthTable::from_fn(7, |m| eval_top_bottom(&l, m))
        );
        let col = Lattice::from_rows(
            7,
            vec![
                vec![Site::Literal(Literal::positive(6))],
                vec![Site::Literal(Literal::negative(1))],
            ],
        )
        .unwrap();
        assert_eq!(
            eval.function(&col),
            TruthTable::from_fn(7, |m| eval_top_bottom(&col, m))
        );
        assert_eq!(
            eval.dual_function(&col),
            TruthTable::from_fn(7, |m| eval_dual(&col, m))
        );
    }
}
