//! Quickstart: one engine batch synthesising a Boolean function on all
//! four strategies, with verification and typed errors.
//!
//! Run with: `cargo run --example quickstart`

use nanoxbar_engine::{Engine, Job, Strategy};
use nanoxbar_logic::{dual_cover, isop_cover, parse_function};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's running example (Sec. III-A): f = x1x2 + x1'x2'.
    let f = parse_function("x0 x1 + !x0 !x1")?;

    println!("target function f = x0 x1 + !x0 !x1 (XNOR)");
    println!("ISOP cover:        {}", isop_cover(&f));
    println!("dual cover (f^D):  {}", dual_cover(&f));
    println!();

    // Build the engine once, then submit every strategy as one batch: the
    // jobs fan out across the work-stealing pool, results come back in
    // input order, and one failing job would not abort the others.
    let engine = Engine::builder().build()?;
    let jobs: Vec<Job> = Strategy::ALL
        .into_iter()
        .map(|s| Job::synthesize(f.clone()).with_strategy(s).verified(true))
        .collect();

    for result in engine.run_batch(&jobs) {
        let r = result?;
        println!(
            "{:>15}: {:>5} array, {:>2} crosspoints, verified: {}",
            r.strategy,
            r.realization
                .as_ref()
                .expect("synthesis jobs carry a realization")
                .size()
                .to_string(),
            r.area(),
            r.verified.unwrap_or(false),
        );
    }

    // Errors are data, not panics: constants need no two-terminal array.
    let constant = Job::parse("x0 + !x0")?.with_strategy(Strategy::Diode);
    println!(
        "\nconstant on diode -> {}",
        engine.run(&constant).unwrap_err()
    );

    println!("\ntruth table check:");
    for m in 0..4u64 {
        let bits = format!("{m:02b}");
        println!("  x1 x0 = {bits} -> f = {}", u8::from(f.value(m)));
    }
    Ok(())
}
