//! E12 (extension) — Sec. IV lifetime reliability: transient upsets vs
//! modular redundancy.
//!
//! The paper's programme separates *fault tolerance* ("errors during
//! normal operation") from fabrication-defect tolerance; its companion
//! study is ref \[15\]. Here: Monte-Carlo output error rates of a diode
//! realisation under per-evaluation transient upsets, simplex vs 3-way vs
//! 5-way modular redundancy, across upset rates — the
//! reliability-vs-area trade the reprogrammable fabric pays for.

use nanoxbar_bench::{banner, f2};
use nanoxbar_core::report::Table;
use nanoxbar_crossbar::DiodeArray;
use nanoxbar_logic::{isop_cover, parse_function};
use nanoxbar_reliability::transient::{RedundantArray, TransientModel};

const TRIALS: u64 = 40_000;

fn main() {
    banner(
        "E12 / Sec. IV (ref [15])",
        "transient upsets vs modular redundancy",
    );

    let f = parse_function("x0 x1 + !x0 !x1 + x1 x2").expect("static");
    let array = DiodeArray::synthesize(&isop_cover(&f));
    let simplex = RedundantArray::new(array.clone(), 1);
    let tmr = RedundantArray::new(array.clone(), 3);
    let fiveway = RedundantArray::new(array, 5);

    println!(
        "realisation: {} diode array; areas: simplex {}, 3-way {}, 5-way {}\n",
        simplex.area(),
        simplex.area(),
        tmr.area(),
        fiveway.area()
    );

    let mut table = Table::new(&[
        "upset rate",
        "simplex err%",
        "3-way err%",
        "5-way err%",
        "3-way gain",
        "5-way gain",
    ]);
    for p in [0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20] {
        let model = TransientModel::symmetric(p);
        let (raw, _) = simplex.error_rates(&model, TRIALS, 11);
        let (_, v3) = tmr.error_rates(&model, TRIALS, 11);
        let (_, v5) = fiveway.error_rates(&model, TRIALS, 11);
        let gain = |v: f64| {
            if v > 0.0 {
                format!("{:.1}x", raw / v)
            } else {
                ">inf".to_string()
            }
        };
        table.row_owned(vec![
            format!("{:.1}%", p * 100.0),
            f2(raw * 100.0),
            f2(v3 * 100.0),
            f2(v5 * 100.0),
            gain(v3),
            gain(v5),
        ]);
    }
    println!("{}", table.render());

    println!(
        "shape check: voted error ~ 3e^2 for small e (quadratic suppression), \
         degrading toward parity as e -> 0.5. The abundance of programmable \
         resources (Sec. I) is what makes the 3x/5x area affordable."
    );
}
