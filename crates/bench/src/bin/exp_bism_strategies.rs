//! E8 — Sec. IV-B: blind vs greedy vs hybrid BISM across defect densities.
//!
//! Monte-Carlo over seeded chips: for each defect density, map a benchmark
//! SOP with each strategy and report mean configuration attempts, mean
//! test operations (BIST + BISD), and success rate. A second series uses
//! chips whose density is bimodal across the population (local density
//! variation) — the scenario the hybrid scheme targets.

use nanoxbar_bench::{banner, f2};
use nanoxbar_core::report::Table;
use nanoxbar_crossbar::ArraySize;
use nanoxbar_logic::suite::random_sop;
use nanoxbar_reliability::bism::{run_bism, Application, BismStats, BismStrategy};
use nanoxbar_reliability::defect::DefectMap;

const CHIPS: u64 = 100;
const MAX_ATTEMPTS: u64 = 400;
const FABRIC: usize = 16;

fn mean_stats<F: Fn(u64) -> DefectMap + Sync>(
    app: &Application,
    chip_of: F,
    strategy: BismStrategy,
) -> (f64, f64, f64) {
    // Chips are independent Monte-Carlo trials: fan the seed grid out over
    // the work-stealing pool; the in-order reduce keeps totals identical to
    // the sequential loop for every NANOXBAR_THREADS.
    let seeds: Vec<u64> = (0..CHIPS).collect();
    let (attempts, ops, successes) = nanoxbar_par::par_map_reduce(
        &seeds,
        1,
        |_i, chunk| {
            let mut acc = (0u64, 0u64, 0u64);
            for &seed in chunk {
                let chip = chip_of(seed);
                let s: BismStats = run_bism(app, &chip, strategy, MAX_ATTEMPTS, seed ^ 0xB15D);
                acc.0 += s.attempts;
                acc.1 += s.bist_runs + s.bisd_runs;
                acc.2 += u64::from(s.success);
            }
            acc
        },
        |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2),
    )
    .unwrap_or_default();
    (
        attempts as f64 / CHIPS as f64,
        ops as f64 / CHIPS as f64,
        successes as f64 / CHIPS as f64 * 100.0,
    )
}

fn main() {
    banner("E8 / Sec. IV-B", "BISM strategies vs defect density");

    // A 6-product SOP over 6 variables: large enough that blind mapping
    // visibly degrades once the defect density climbs.
    let app = Application::from_cover(&random_sop(6, 6, 42));
    let size = ArraySize::new(FABRIC, FABRIC);
    println!(
        "application: {} products over {} literal columns\n",
        app.product_count(),
        app.used_cols()
    );

    println!("uniform global density (fabric {FABRIC}x{FABRIC}, {CHIPS} chips/point):\n");
    let mut table = Table::new(&[
        "density",
        "blind att",
        "blind ops",
        "blind ok%",
        "greedy att",
        "greedy ops",
        "greedy ok%",
        "hybrid att",
        "hybrid ops",
        "hybrid ok%",
    ]);
    for density in [0.001, 0.005, 0.01, 0.02, 0.05, 0.10, 0.15, 0.20] {
        let chip_of = |seed: u64| {
            DefectMap::random_uniform(size, density * 0.7, density * 0.3, seed * 31 + 7)
        };
        let blind = mean_stats(&app, chip_of, BismStrategy::Blind);
        let greedy = mean_stats(&app, chip_of, BismStrategy::Greedy);
        let hybrid = mean_stats(&app, chip_of, BismStrategy::Hybrid { blind_retries: 5 });
        table.row_owned(vec![
            format!("{:.1}%", density * 100.0),
            f2(blind.0),
            f2(blind.1),
            f2(blind.2),
            f2(greedy.0),
            f2(greedy.1),
            f2(greedy.2),
            f2(hybrid.0),
            f2(hybrid.1),
            f2(hybrid.2),
        ]);
    }
    println!("{}", table.render());

    println!("bimodal per-chip density (80% clean 0.5%, 20% dirty 15%):\n");
    let mut table = Table::new(&["strategy", "mean attempts", "mean test ops", "success %"]);
    let chip_of = |seed: u64| {
        let density = if seed.is_multiple_of(5) { 0.15 } else { 0.005 };
        DefectMap::random_uniform(size, density * 0.7, density * 0.3, seed * 131 + 13)
    };
    for (name, strategy) in [
        ("blind", BismStrategy::Blind),
        ("greedy", BismStrategy::Greedy),
        ("hybrid(5)", BismStrategy::Hybrid { blind_retries: 5 }),
    ] {
        let (att, ops, ok) = mean_stats(&app, chip_of, strategy);
        table.row_owned(vec![name.to_string(), f2(att), f2(ops), f2(ok)]);
    }
    println!("{}", table.render());

    println!(
        "paper claims (Sec. IV-B): blind is fast/effective at low densities \
         but degrades with too many retries at high densities; greedy uses \
         diagnosis to stay effective; hybrid tracks the better of the two \
         across global and local density variation. Compare the attempt \
         columns above."
    );
}
