//! The end-to-end design flow — plain re-exports.
//!
//! The implementation lives in [`nanoxbar_engine::flow`]; jobs with a chip
//! run it through `Engine::run`/`run_batch`
//! ([`nanoxbar_engine::Job::on_chip`]). The deprecated
//! `defect_unaware_flow` shim of the pre-engine API has been removed —
//! call [`defect_unaware_flow`] (re-exported here) directly.

pub use nanoxbar_engine::flow::{
    defect_unaware_flow, defect_unaware_flow_with_cover, FlowError, FlowReport,
};
