//! Property suite for the batch engine: `run_batch` must be bit-identical
//! to per-job sequential `run` — same realisations, same flow reports,
//! same typed errors, in input order — and deterministic across
//! `NANOXBAR_THREADS` ∈ {1, 2, 8}, including batches that mix succeeding
//! and failing jobs (constants on two-terminal strategies, unknown
//! strategies, fabric exhaustion).

use proptest::prelude::*;

use nanoxbar_crossbar::ArraySize;
use nanoxbar_engine::{Engine, Error, Job, JobResult, Strategy as SynthStrategy};
use nanoxbar_logic::TruthTable;
use nanoxbar_reliability::defect::DefectMap;

/// One random job: a 1–3 variable function (constants included on
/// purpose), a strategy pick that sometimes names a nonexistent backend,
/// and sometimes a chip — occasionally one too small for the SOP.
fn arb_job() -> impl Strategy<Value = Job> {
    (any::<u64>(), 1usize..=3, 0u8..=255, 0u64..1000).prop_map(|(bits, num_vars, knobs, seed)| {
        let f = TruthTable::from_fn(num_vars, |m| (bits >> (m % 64)) & 1 == 1);
        let mut job = Job::synthesize(f);
        job = match knobs % 6 {
            0 => job.with_strategy(SynthStrategy::Diode),
            1 => job.with_strategy(SynthStrategy::Fet),
            2 => job.with_strategy(SynthStrategy::DualLattice),
            3 => job.with_strategy(SynthStrategy::OptimalLattice),
            4 => job.with_strategy_name("no-such-backend"),
            _ => job, // engine default
        };
        job = match (knobs / 6) % 4 {
            0 => job.on_random_chip(ArraySize::new(12, 12), seed),
            1 => job.on_chip(DefectMap::healthy(ArraySize::new(2, 2))), // usually too small
            _ => job,
        };
        job.verified((knobs / 24) % 2 == 0)
            .labeled(format!("job-{bits:x}"))
    })
}

/// Result equivalence modulo `elapsed` (wall-clock time is the one field
/// determinism cannot cover).
fn same_outcome(a: &Result<JobResult, Error>, b: &Result<JobResult, Error>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            x.label == y.label
                && x.strategy == y.strategy
                && x.realization == y.realization
                && x.verified == y.verified
                && x.flow == y.flow
        }
        (Err(x), Err(y)) => x == y,
        _ => false,
    }
}

fn describe(r: &Result<JobResult, Error>) -> String {
    match r {
        Ok(ok) => format!("Ok({}, {} sites)", ok.strategy, ok.area()),
        Err(e) => format!("Err({e})"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `run_batch` ≡ sequential `run`, per job, across thread counts.
    #[test]
    fn batch_matches_sequential_across_thread_counts(
        jobs in proptest::collection::vec(arb_job(), 1..=10),
    ) {
        let engine = Engine::new();

        // The sequential reference: every job run inline, serial pool.
        nanoxbar_par::set_threads(1);
        let reference: Vec<Result<JobResult, Error>> =
            jobs.iter().map(|job| engine.run(job)).collect();

        for threads in [1usize, 2, 8] {
            nanoxbar_par::set_threads(threads);
            let batch = engine.run_batch(&jobs);
            prop_assert_eq!(batch.len(), jobs.len(), "threads={}", threads);
            for (i, (got, want)) in batch.iter().zip(&reference).enumerate() {
                prop_assert!(
                    same_outcome(got, want),
                    "threads={} job={} got={} want={}",
                    threads,
                    i,
                    describe(got),
                    describe(want)
                );
            }
        }
        nanoxbar_par::set_threads(1);
    }

    /// Labels ride through the batch in input order even when every other
    /// job fails — per-job isolation never reorders or drops results.
    #[test]
    fn mixed_failure_batches_stay_input_ordered(seeds in proptest::collection::vec(0u64..100, 2..=6)) {
        let engine = Engine::new();
        let xnor = TruthTable::from_fn(2, |m| m == 0 || m == 3);
        let jobs: Vec<Job> = seeds
            .iter()
            .enumerate()
            .flat_map(|(i, &seed)| {
                [
                    Job::synthesize(xnor.clone())
                        .with_strategy(SynthStrategy::Diode)
                        .on_random_chip(ArraySize::new(12, 12), seed)
                        .labeled(format!("ok-{i}")),
                    Job::synthesize(TruthTable::ones(2))
                        .with_strategy(SynthStrategy::Fet)
                        .labeled(format!("fail-{i}")),
                ]
            })
            .collect();
        for threads in [1usize, 2, 8] {
            nanoxbar_par::set_threads(threads);
            let results = engine.run_batch(&jobs);
            for (i, pair) in results.chunks(2).enumerate() {
                let ok = pair[0].as_ref().expect("even slots succeed");
                prop_assert_eq!(ok.label.as_deref(), Some(format!("ok-{i}").as_str()));
                prop_assert!(ok.flow.as_ref().is_some(), "chip jobs carry flow reports");
                prop_assert_eq!(
                    pair[1].as_ref().unwrap_err(),
                    &Error::ConstantFunction { num_vars: 2 }
                );
            }
        }
        nanoxbar_par::set_threads(1);
    }
}

/// `Engine::prepare_map` exposes exactly the state the engine's own map
/// path runs on: driving an external `Mapper` from the setup — whole-run
/// or one checkpointed round at a time — reproduces `engine.run`'s map
/// report bit for bit. This is the contract the service's resumable
/// sessions are built on.
#[test]
fn prepare_map_reproduces_the_engine_map_path() {
    use nanoxbar_engine::Mapper;

    let engine = Engine::new();
    let xnor = TruthTable::from_fn(2, |m| m == 0 || m == 3);
    for seed in [3u64, 11, 42] {
        let job = Job::synthesize(xnor.clone())
            .map_on_random_chip(ArraySize::new(10, 10), seed)
            .verified(true);
        let reference = engine.run(&job).expect("map job succeeds");
        let reference_report = reference.map.as_ref().expect("map jobs carry a report");

        let setup = engine.prepare_map(&job).expect("prepare");
        assert_eq!(
            format!("{:?}", setup.realization),
            format!("{:?}", reference.realization.as_ref().unwrap()),
            "prepare_map synthesises the same realization"
        );

        // Whole run in one go.
        let mut mapper = Mapper::new(setup.app.clone(), setup.chip.clone(), setup.config);
        mapper.run();
        assert_eq!(&mapper.report(), reference_report, "seed {seed}: one-shot");

        // One round at a time through snapshot/resume checkpoints.
        let mut mapper = Mapper::new(setup.app.clone(), setup.chip.clone(), setup.config);
        while !mapper.is_done() {
            let snapshot = mapper.snapshot();
            mapper = Mapper::resume(
                setup.app.clone(),
                setup.chip.clone(),
                setup.config,
                &snapshot,
            );
            mapper.run_rounds(1);
        }
        assert_eq!(
            &mapper.report(),
            reference_report,
            "seed {seed}: checkpointed"
        );
    }
}
