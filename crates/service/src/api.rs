//! The service's request/response vocabulary: [`JobSpec`] (one synthesis
//! request) and its mapping onto engine [`Job`]s, plus the JSON rendering
//! of per-slot results.
//!
//! Responses are **deterministic**: no wall-clock fields, object keys in
//! fixed order, and a content [`fingerprint`] of the realization — so two
//! runs of the same job (cached or not, any thread count) produce
//! byte-identical bodies. Latency lives in `/metrics`, not in bodies.

use std::time::Duration;

use nanoxbar_crossbar::ArraySize;
use nanoxbar_engine::{
    BismStrategy, Error, Job, JobResult, Limits, MapConfig, MapReport, MinimizeMode, MvmOutcome,
    MvmSpec, Realization,
};
use nanoxbar_logic::pla::parse_pla;
use nanoxbar_reliability::defect::{CrosspointHealth, DefectMap};

use crate::wire::{object, Json};

/// One job of a `/v1/synthesize` or `/v1/batch` request.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct JobSpec {
    /// Boolean expression in the paper's syntax (`"x0 x1 + !x0 !x1"`).
    /// Exactly one of `expr`/`exprs`/`pla` must be set.
    pub expr: Option<String>,
    /// Multi-output job: one expression per output, all compiled onto a
    /// *single* shared-BDD sneak-path crossbar (strategy `"bdd"`).
    /// Shorter expressions are zero-extended to the widest arity.
    /// Exclusive with `chip`/`map` — the defect flow is single-output.
    pub exprs: Option<Vec<String>>,
    /// A Berkeley-format PLA body. Single-output bodies lower to an
    /// ordinary synthesis job; multi-output bodies lower to a shared-BDD
    /// multi-output job exactly like [`JobSpec::exprs`].
    pub pla: Option<String>,
    /// Backend name (`"diode"`, `"fet"`, `"dual-lattice"`,
    /// `"optimal-lattice"`, or a custom registration); `None` = engine
    /// default.
    pub strategy: Option<String>,
    /// Request exhaustive verification of the realization.
    pub verify: bool,
    /// Caller label echoed in the result.
    pub label: Option<String>,
    /// The simulated defective chip the fault-tolerance path targets.
    /// Alone it selects the defect-unaware flow; with [`JobSpec::map`]
    /// it becomes the BISM mapping target instead.
    pub chip: Option<ChipRequest>,
    /// Run built-in self-mapping on the chip (requires `chip`).
    pub map: Option<MapRequest>,
    /// An analog in-memory-compute MVM workload. Exclusive with every
    /// synthesis field — an mvm slot carries its own chip parameters.
    pub mvm: Option<MvmRequest>,
}

/// The optional chip of a [`JobSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct ChipRequest {
    /// Fabric rows.
    pub rows: usize,
    /// Fabric columns.
    pub cols: usize,
    /// Seed of the deterministic defect draw.
    pub seed: u64,
    /// Total defect rate (split 70/30 stuck-open/stuck-closed like the
    /// experiment binaries); `None` = the engine's fault model.
    pub defect_rate: Option<f64>,
}

/// The BISM options of a `/v1/map` request (or a map slot in a batch).
/// Every field is optional; [`MapRequest::default`] is the engine's
/// default [`MapConfig`] (hybrid:5, speculation 4, 400 attempts, seed 0).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MapRequest {
    /// `"blind"`, `"greedy"`, or `"hybrid"`; `None` = hybrid.
    pub strategy: Option<String>,
    /// Blind retries before hybrid switches to greedy (hybrid only).
    pub blind_retries: Option<u64>,
    /// Speculation width K, in `1..=64`.
    pub speculation: Option<u64>,
    /// Candidate budget, in `1..=1_000_000`.
    pub max_attempts: Option<u64>,
    /// Placement RNG seed.
    pub seed: u64,
}

impl MapRequest {
    fn from_json(v: &Json) -> Result<MapRequest, String> {
        let Json::Object(members) = v else {
            return Err("\"map\" must be a JSON object".into());
        };
        let mut request = MapRequest::default();
        for (key, value) in members {
            match key.as_str() {
                "strategy" => request.strategy = Some(string_field(value, "strategy")?),
                "blind_retries" => {
                    request.blind_retries = Some(value.as_u64().ok_or_else(|| {
                        "\"blind_retries\" must be a non-negative integer".to_string()
                    })?)
                }
                "speculation" => {
                    request.speculation = Some(budget_field(value, "speculation", 1, 64)?)
                }
                "max_attempts" => {
                    request.max_attempts = Some(budget_field(value, "max_attempts", 1, 1_000_000)?)
                }
                "seed" => {
                    request.seed = value
                        .as_u64()
                        .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
                }
                other => return Err(format!("unknown map field {other:?}")),
            }
        }
        // Validate the strategy spelling eagerly so a bad spec 400s
        // instead of poisoning its slot later.
        request.config()?;
        Ok(request)
    }

    fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = Vec::new();
        if let Some(strategy) = &self.strategy {
            members.push(("strategy".into(), Json::Str(strategy.clone())));
        }
        if let Some(retries) = self.blind_retries {
            members.push(("blind_retries".into(), Json::from(retries)));
        }
        if let Some(speculation) = self.speculation {
            members.push(("speculation".into(), Json::from(speculation)));
        }
        if let Some(attempts) = self.max_attempts {
            members.push(("max_attempts".into(), Json::from(attempts)));
        }
        if self.seed != 0 {
            members.push(("seed".into(), Json::from(self.seed)));
        }
        Json::Object(members)
    }

    /// Lowers the request to the engine's [`MapConfig`].
    ///
    /// # Errors
    ///
    /// A message for unknown strategies or `blind_retries` on a
    /// non-hybrid strategy.
    pub fn config(&self) -> Result<MapConfig, String> {
        let defaults = MapConfig::default();
        let strategy = match self.strategy.as_deref() {
            None | Some("hybrid") => BismStrategy::Hybrid {
                blind_retries: self.blind_retries.unwrap_or(5),
            },
            Some(other) => {
                if self.blind_retries.is_some() {
                    return Err("\"blind_retries\" only applies to \"hybrid\"".into());
                }
                match other {
                    "blind" => BismStrategy::Blind,
                    "greedy" => BismStrategy::Greedy,
                    _ => {
                        return Err(format!(
                            "unknown map strategy {other:?} (blind, greedy, hybrid)"
                        ))
                    }
                }
            }
        };
        Ok(MapConfig {
            strategy,
            speculation: self.speculation.unwrap_or(defaults.speculation as u64) as usize,
            max_attempts: self.max_attempts.unwrap_or(defaults.max_attempts),
            seed: self.seed,
        })
    }
}

/// The analog MVM workload of a `/v1/mvm` request (or an mvm slot in a
/// batch): a signed weight matrix, an input vector, and the chip the
/// weights are programmed onto.
#[derive(Clone, Debug, PartialEq)]
pub struct MvmRequest {
    /// Weight matrix rows (output vector length), in `1..=4096`.
    pub rows: usize,
    /// Weight matrix columns (input vector length), in `1..=4096`.
    pub cols: usize,
    /// Row-major signed weights, `rows * cols` finite values.
    pub weights: Vec<f32>,
    /// The input vector, `cols` finite values.
    pub input: Vec<f32>,
    /// Seed of the deterministic chip draw (defects + variation field).
    pub chip_seed: u64,
    /// Stuck-open probability per physical device (default 0).
    pub p_open: f64,
    /// Stuck-closed probability per physical device (default 0).
    pub p_closed: f64,
    /// Relative sigma of device variation and programming noise
    /// (default 0).
    pub noise_sigma: f32,
    /// Monte-Carlo programming trials (default 1).
    pub trials: u32,
}

impl MvmRequest {
    fn from_json(v: &Json) -> Result<MvmRequest, String> {
        let Json::Object(members) = v else {
            return Err("\"mvm\" must be a JSON object".into());
        };
        let (mut rows, mut cols, mut weights, mut input) = (None, None, None, None);
        let mut request = MvmRequest {
            rows: 0,
            cols: 0,
            weights: Vec::new(),
            input: Vec::new(),
            chip_seed: 0,
            p_open: 0.0,
            p_closed: 0.0,
            noise_sigma: 0.0,
            trials: 1,
        };
        for (key, value) in members {
            match key.as_str() {
                "rows" => rows = Some(dimension_field(value, "rows")?),
                "cols" => cols = Some(dimension_field(value, "cols")?),
                "weights" => weights = Some(f32_array_field(value, "weights")?),
                "input" => input = Some(f32_array_field(value, "input")?),
                "chip_seed" => {
                    request.chip_seed = value
                        .as_u64()
                        .ok_or_else(|| "\"chip_seed\" must be a non-negative integer".to_string())?
                }
                "p_open" => request.p_open = float_field(value, "p_open")?,
                "p_closed" => request.p_closed = float_field(value, "p_closed")?,
                "noise_sigma" => request.noise_sigma = float_field(value, "noise_sigma")? as f32,
                "trials" => {
                    request.trials = budget_field(value, "trials", 1, 4096)? as u32;
                }
                other => return Err(format!("unknown mvm field {other:?}")),
            }
        }
        request.rows = rows.ok_or("\"mvm\" needs \"rows\"")?;
        request.cols = cols.ok_or("\"mvm\" needs \"cols\"")?;
        request.weights = weights.ok_or("\"mvm\" needs \"weights\"")?;
        request.input = input.ok_or("\"mvm\" needs \"input\"")?;
        Ok(request)
    }

    fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("rows".into(), Json::from(self.rows)),
            ("cols".into(), Json::from(self.cols)),
            ("weights".into(), f32_json_array(&self.weights)),
            ("input".into(), f32_json_array(&self.input)),
        ];
        if self.chip_seed != 0 {
            members.push(("chip_seed".into(), Json::from(self.chip_seed)));
        }
        if self.p_open != 0.0 {
            members.push(("p_open".into(), Json::Float(self.p_open)));
        }
        if self.p_closed != 0.0 {
            members.push(("p_closed".into(), Json::Float(self.p_closed)));
        }
        if self.noise_sigma != 0.0 {
            members.push((
                "noise_sigma".into(),
                Json::Float(f64::from(self.noise_sigma)),
            ));
        }
        if self.trials != 1 {
            members.push(("trials".into(), Json::from(u64::from(self.trials))));
        }
        Json::Object(members)
    }

    /// Lowers the request to a fully validated engine [`MvmSpec`].
    ///
    /// # Errors
    ///
    /// The first [`MvmSpec::validate`] failure — mismatched dimensions,
    /// non-finite values, defect probabilities outside `[0, 1]` or
    /// summing past 1, a bad `noise_sigma`. The service maps this to a
    /// 400 (one-shot) or an isolated failed slot (batch), so a bad spec
    /// can never trip a library `assert!` on a pool worker.
    pub fn spec(&self) -> Result<MvmSpec, String> {
        let spec = MvmSpec {
            rows: self.rows,
            cols: self.cols,
            weights: self.weights.clone(),
            input: self.input.clone(),
            chip_seed: self.chip_seed,
            p_open: self.p_open,
            p_closed: self.p_closed,
            noise_sigma: self.noise_sigma,
            trials: self.trials,
        };
        spec.validate()?;
        Ok(spec)
    }
}

impl JobSpec {
    /// A spec synthesising `expr` with every option defaulted.
    pub fn expr(expr: impl Into<String>) -> Self {
        JobSpec {
            expr: Some(expr.into()),
            ..JobSpec::default()
        }
    }

    /// A spec synthesising a single-output PLA body.
    pub fn pla(body: impl Into<String>) -> Self {
        JobSpec {
            pla: Some(body.into()),
            ..JobSpec::default()
        }
    }

    /// Reads a spec from its JSON object form.
    ///
    /// # Errors
    ///
    /// A human-readable message for unknown fields, type mismatches, or a
    /// missing/ambiguous function.
    pub fn from_json(v: &Json) -> Result<JobSpec, String> {
        let Json::Object(members) = v else {
            return Err("job must be a JSON object".into());
        };
        let mut spec = JobSpec::default();
        for (key, value) in members {
            match key.as_str() {
                "expr" => spec.expr = Some(string_field(value, "expr")?),
                "exprs" => spec.exprs = Some(string_array_field(value, "exprs")?),
                "pla" => spec.pla = Some(string_field(value, "pla")?),
                "strategy" => spec.strategy = Some(string_field(value, "strategy")?),
                "label" => spec.label = Some(string_field(value, "label")?),
                "verify" => {
                    spec.verify = value
                        .as_bool()
                        .ok_or_else(|| "\"verify\" must be a boolean".to_string())?
                }
                "chip" => spec.chip = Some(ChipRequest::from_json(value)?),
                "map" => spec.map = Some(MapRequest::from_json(value)?),
                "mvm" => spec.mvm = Some(MvmRequest::from_json(value)?),
                other => return Err(format!("unknown job field {other:?}")),
            }
        }
        if spec.map.is_some() && spec.chip.is_none() {
            return Err("\"map\" needs a \"chip\" to map onto".into());
        }
        if spec.mvm.is_some() {
            if spec.expr.is_some()
                || spec.exprs.is_some()
                || spec.pla.is_some()
                || spec.strategy.is_some()
                || spec.verify
                || spec.chip.is_some()
                || spec.map.is_some()
            {
                return Err("\"mvm\" cannot be combined with synthesis fields \
                     (expr, exprs, pla, strategy, verify, chip, map)"
                    .into());
            }
            return Ok(spec);
        }
        let sources = [
            spec.expr.is_some(),
            spec.exprs.is_some(),
            spec.pla.is_some(),
        ]
        .into_iter()
        .filter(|&set| set)
        .count();
        match sources {
            0 => Err("job needs an \"expr\", \"exprs\", a \"pla\", or an \"mvm\"".into()),
            1 => {
                if spec.exprs.is_some() && (spec.chip.is_some() || spec.map.is_some()) {
                    return Err("multi-output \"exprs\" cannot target a \"chip\" \
                         (the defect flow is single-output)"
                        .into());
                }
                Ok(spec)
            }
            _ => Err("job cannot have both \"expr\" and \"pla\" \
                 (exactly one of \"expr\"/\"exprs\"/\"pla\")"
                .into()),
        }
    }

    /// The JSON object form (inverse of [`JobSpec::from_json`]).
    pub fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = Vec::new();
        if let Some(expr) = &self.expr {
            members.push(("expr".into(), Json::Str(expr.clone())));
        }
        if let Some(exprs) = &self.exprs {
            members.push((
                "exprs".into(),
                Json::Array(exprs.iter().map(|e| Json::Str(e.clone())).collect()),
            ));
        }
        if let Some(pla) = &self.pla {
            members.push(("pla".into(), Json::Str(pla.clone())));
        }
        if let Some(strategy) = &self.strategy {
            members.push(("strategy".into(), Json::Str(strategy.clone())));
        }
        if self.verify {
            members.push(("verify".into(), Json::Bool(true)));
        }
        if let Some(label) = &self.label {
            members.push(("label".into(), Json::Str(label.clone())));
        }
        if let Some(chip) = &self.chip {
            members.push(("chip".into(), chip.to_json()));
        }
        if let Some(map) = &self.map {
            members.push(("map".into(), map.to_json()));
        }
        if let Some(mvm) = &self.mvm {
            members.push(("mvm".into(), mvm.to_json()));
        }
        Json::Object(members)
    }

    /// Lowers the spec to an engine [`Job`].
    ///
    /// # Errors
    ///
    /// A message for unparsable expressions/PLA bodies or multi-output
    /// PLAs (batch them as one job per output instead).
    pub fn to_job(&self) -> Result<Job, String> {
        if let Some(mvm) = &self.mvm {
            // Validation happens here — at the boundary — so a bad spec
            // fails its own slot (batch) or 400s (one-shot) instead of
            // tripping an assert on a pool worker.
            let mut job = Job::mvm(mvm.spec()?);
            if let Some(label) = &self.label {
                job = job.labeled(label.clone());
            }
            return Ok(job);
        }
        let mut job = match (&self.expr, &self.exprs, &self.pla) {
            (Some(expr), None, None) => {
                Job::parse(expr).map_err(|e| format!("bad expression: {e}"))?
            }
            (None, Some(exprs), None) => {
                if exprs.is_empty() {
                    return Err("\"exprs\" must name at least one output".into());
                }
                let mut outputs = Vec::with_capacity(exprs.len());
                for (i, expr) in exprs.iter().enumerate() {
                    let f = nanoxbar_logic::parse_function(expr)
                        .map_err(|e| format!("bad expression in exprs[{i}]: {e}"))?;
                    outputs.push(f);
                }
                // Outputs of one crossbar share one input bus: align every
                // function to the widest arity before compiling.
                let arity = outputs.iter().map(|f| f.num_vars()).max().unwrap_or(1);
                let outputs = outputs
                    .into_iter()
                    .map(|f| {
                        let extra = arity - f.num_vars();
                        f.extend_vars(extra)
                    })
                    .collect();
                Job::synthesize_multi(outputs)
            }
            (None, None, Some(body)) => {
                let pla = parse_pla(body).map_err(|e| format!("bad PLA: {e}"))?;
                match pla.outputs.as_slice() {
                    [] => return Err("PLA declares 0 outputs".into()),
                    [only] => Job::synthesize(only.to_truth_table()),
                    outputs => {
                        // A multi-output body is a multi-output job: every
                        // column compiles onto one shared-BDD crossbar.
                        // Only the "bdd" strategy realises those.
                        if !matches!(self.strategy.as_deref(), None | Some("bdd")) {
                            return Err(format!(
                                "PLA has {} outputs; only strategy \"bdd\" realises \
                                 multi-output jobs (or submit one job per output)",
                                outputs.len()
                            ));
                        }
                        Job::synthesize_multi(
                            outputs.iter().map(|cover| cover.to_truth_table()).collect(),
                        )
                    }
                }
            }
            _ => return Err("job needs exactly one of \"expr\"/\"exprs\"/\"pla\"".into()),
        };
        if let Some(strategy) = &self.strategy {
            job = job.with_strategy_name(strategy.clone());
        }
        if let Some(label) = &self.label {
            job = job.labeled(label.clone());
        }
        job = job.verified(self.verify);
        if let Some(chip) = &self.chip {
            let size = ArraySize::new(chip.rows, chip.cols);
            match &self.map {
                // A map request redirects the chip to BISM self-mapping;
                // the defect-unaware flow is the chip-only default.
                Some(map) => {
                    job = job.with_map_config(map.config()?);
                    job = match chip.defect_rate {
                        Some(rate) => job.map_on_chip(DefectMap::random_uniform(
                            size,
                            rate * 0.7,
                            rate * 0.3,
                            chip.seed,
                        )),
                        None => job.map_on_random_chip(size, chip.seed),
                    };
                }
                None => {
                    job = match chip.defect_rate {
                        // An explicit rate pins the whole defect draw in
                        // the request; otherwise the engine's fault model
                        // decides.
                        Some(rate) => job.on_chip(DefectMap::random_uniform(
                            size,
                            rate * 0.7,
                            rate * 0.3,
                            chip.seed,
                        )),
                        None => job.on_random_chip(size, chip.seed),
                    };
                }
            }
        }
        Ok(job)
    }
}

impl ChipRequest {
    fn from_json(v: &Json) -> Result<ChipRequest, String> {
        let Json::Object(members) = v else {
            return Err("\"chip\" must be a JSON object".into());
        };
        let mut rows = None;
        let mut cols = None;
        let mut seed = 0u64;
        let mut defect_rate = None;
        for (key, value) in members {
            match key.as_str() {
                "rows" => rows = Some(dimension_field(value, "rows")?),
                "cols" => cols = Some(dimension_field(value, "cols")?),
                "seed" => {
                    seed = value
                        .as_u64()
                        .ok_or_else(|| "\"seed\" must be a non-negative integer".to_string())?
                }
                "defect_rate" => {
                    let rate = value
                        .as_f64()
                        .ok_or_else(|| "\"defect_rate\" must be a number".to_string())?;
                    if !(0.0..=1.0).contains(&rate) {
                        return Err("\"defect_rate\" must be in [0, 1]".into());
                    }
                    defect_rate = Some(rate);
                }
                other => return Err(format!("unknown chip field {other:?}")),
            }
        }
        Ok(ChipRequest {
            rows: rows.ok_or("\"chip\" needs \"rows\"")?,
            cols: cols.ok_or("\"chip\" needs \"cols\"")?,
            seed,
            defect_rate,
        })
    }

    fn to_json(&self) -> Json {
        let mut members: Vec<(String, Json)> = vec![
            ("rows".into(), Json::from(self.rows)),
            ("cols".into(), Json::from(self.cols)),
            ("seed".into(), Json::from(self.seed)),
        ];
        if let Some(rate) = self.defect_rate {
            members.push(("defect_rate".into(), Json::Float(rate)));
        }
        Json::Object(members)
    }
}

fn string_field(v: &Json, name: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{name:?} must be a string"))
}

/// Largest accepted multi-output `exprs` list (the shared-BDD compiler is
/// exponential in the worst case; the bound keeps one slot from holding a
/// pool worker).
const MAX_EXPRS: usize = 64;

fn string_array_field(v: &Json, name: &str) -> Result<Vec<String>, String> {
    let values = v
        .as_array()
        .ok_or_else(|| format!("{name:?} must be an array of strings"))?;
    if values.len() > MAX_EXPRS {
        return Err(format!(
            "{name:?} holds {} outputs, more than the accepted {MAX_EXPRS}",
            values.len()
        ));
    }
    values
        .iter()
        .map(|x| {
            x.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{name:?} must be an array of strings"))
        })
        .collect()
}

fn float_field(v: &Json, name: &str) -> Result<f64, String> {
    v.as_f64()
        .ok_or_else(|| format!("{name:?} must be a number"))
}

/// Largest accepted `weights`/`input` array (matches the engine's
/// `MvmSpec` area ceiling).
const MAX_F32_ARRAY: usize = 1 << 20;

fn f32_array_field(v: &Json, name: &str) -> Result<Vec<f32>, String> {
    let values = v
        .as_array()
        .ok_or_else(|| format!("{name:?} must be an array of numbers"))?;
    if values.len() > MAX_F32_ARRAY {
        return Err(format!(
            "{name:?} holds {} values, more than the accepted {MAX_F32_ARRAY}",
            values.len()
        ));
    }
    values
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|f| f as f32)
                .ok_or_else(|| format!("{name:?} must be an array of numbers"))
        })
        .collect()
}

/// f32 values on the wire: widened to f64 (exact — every f32 is an f64),
/// so rendering inherits the wire layer's deterministic float format and
/// responses stay byte-identical across runs and replicas.
fn f32_json_array(values: &[f32]) -> Json {
    Json::Array(values.iter().map(|&v| Json::Float(f64::from(v))).collect())
}

fn dimension_field(v: &Json, name: &str) -> Result<usize, String> {
    let value = v
        .as_u64()
        .ok_or_else(|| format!("{name:?} must be a positive integer"))?;
    if value == 0 || value > 4096 {
        return Err(format!("{name:?} must be in 1..=4096"));
    }
    Ok(value as usize)
}

/// A bounded integer budget field; out-of-range values are rejected so a
/// request cannot hold a pool worker indefinitely (or starve itself).
fn budget_field(v: &Json, name: &str, min: u64, max: u64) -> Result<u64, String> {
    let value = v
        .as_u64()
        .ok_or_else(|| format!("{name:?} must be a positive integer"))?;
    if !(min..=max).contains(&value) {
        return Err(format!("{name:?} must be in {min}..={max}"));
    }
    Ok(value)
}

/// Largest accepted per-request time budget (one minute).
const MAX_TIME_MS: u64 = 60_000;
/// Largest accepted per-request SAT conflict budget.
const MAX_SAT_CONFLICTS: u64 = 1_000_000_000;

/// Parses the optional top-level `"limits"` request object into per-job
/// engine [`Limits`]: `{"time_ms": 1..=60000, "sat_conflicts":
/// 1..=10^9}`. Out-of-range budgets are rejected — the hardening contract
/// is that no accepted request can hold a pool worker indefinitely.
///
/// # Errors
///
/// A message naming the offending field and its accepted range.
pub fn parse_limits(v: Option<&Json>) -> Result<Option<Limits>, String> {
    let Some(v) = v else { return Ok(None) };
    let Json::Object(members) = v else {
        return Err("\"limits\" must be a JSON object".into());
    };
    let mut limits = Limits::default();
    for (key, value) in members {
        match key.as_str() {
            "time_ms" => {
                limits.time = Some(Duration::from_millis(budget_field(
                    value,
                    "time_ms",
                    1,
                    MAX_TIME_MS,
                )?))
            }
            "sat_conflicts" => {
                limits.sat_conflicts =
                    Some(budget_field(value, "sat_conflicts", 1, MAX_SAT_CONFLICTS)?)
            }
            other => return Err(format!("unknown limits field {other:?}")),
        }
    }
    Ok(Some(limits))
}

/// A short machine-matchable tag for each error variant.
pub fn error_kind(e: &Error) -> &'static str {
    match e {
        Error::Logic(_) => "logic",
        Error::Flow(_) => "flow",
        Error::Synth(_) => "synthesis",
        Error::ConstantFunction { .. } => "constant-function",
        Error::UnknownStrategy { .. } => "unknown-strategy",
        Error::MvmSpec { .. } => "mvm-spec",
        Error::MultiSpec { .. } => "multi-spec",
        Error::MapConfig { .. } => "map-config",
        Error::MapFabric { .. } => "map-fabric",
        Error::AreaLimit { .. } => "area-limit",
        Error::TimeLimit { .. } => "time-limit",
        Error::Verification { .. } => "verification",
        Error::Panicked { .. } => "panicked",
        _ => "other",
    }
}

/// FNV-1a content fingerprint of a realization (stable across runs,
/// processes, and thread counts — `Realization` derives a deterministic
/// `Debug`). Lets clients and the load generator assert that cached and
/// fresh responses carry the *same* realization, not just the same area.
pub fn fingerprint(realization: &Realization) -> String {
    let mut hash: u64 = 0xCBF29CE484222325;
    for byte in format!("{realization:?}").bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x100000001B3);
    }
    format!("{hash:016x}")
}

/// Renders one batch slot as its wire object.
pub fn result_to_json(slot: &Result<JobResult, Error>) -> Json {
    match slot {
        Ok(result) => {
            if let Some(outcome) = &result.mvm {
                return mvm_result_to_json(result, outcome);
            }
            let realization = result
                .realization
                .as_ref()
                .expect("non-mvm results carry a realization");
            let size = realization.size();
            let mut members: Vec<(String, Json)> = vec![
                ("ok".into(), Json::Bool(true)),
                ("strategy".into(), Json::Str(result.strategy.clone())),
                (
                    "technology".into(),
                    Json::Str(realization.technology().name().into()),
                ),
                ("rows".into(), Json::from(size.rows)),
                ("cols".into(), Json::from(size.cols)),
                ("area".into(), Json::from(result.area())),
                ("fingerprint".into(), Json::Str(fingerprint(realization))),
            ];
            // Multi-output realizations say how many functions share the
            // crossbar; single-output bodies keep their historical shape.
            if realization.num_outputs() > 1 {
                members.push(("outputs".into(), Json::from(realization.num_outputs())));
            }
            if let Some(verified) = result.verified {
                members.push(("verified".into(), Json::Bool(verified)));
            }
            if let Some(label) = &result.label {
                members.push(("label".into(), Json::Str(label.clone())));
            }
            if let Some(flow) = &result.flow {
                members.push((
                    "flow".into(),
                    object(vec![
                        ("bist_passed", Json::Bool(flow.bist_passed)),
                        ("recovered_k", Json::from(flow.recovered.k())),
                        ("products", Json::from(flow.products)),
                        ("used_cols", Json::from(flow.used_cols)),
                        (
                            "placement",
                            Json::Array(flow.placement.iter().map(|&r| Json::from(r)).collect()),
                        ),
                    ]),
                ));
            }
            if let Some(map) = &result.map {
                members.push(("map".into(), map_to_json(map)));
            }
            Json::Object(members)
        }
        Err(e) => bad_slot(error_kind(e), &e.to_string()),
    }
}

/// Renders an mvm slot: dimensions, the chip's defect count, the ideal
/// and analog output vectors (f32 widened exactly to f64), and the
/// Monte-Carlo RMS error statistics. No clocks — identical requests give
/// byte-identical mvm objects on every run, thread count, and replica.
fn mvm_result_to_json(result: &JobResult, outcome: &MvmOutcome) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("ok".into(), Json::Bool(true)),
        ("strategy".into(), Json::Str(result.strategy.clone())),
        ("rows".into(), Json::from(outcome.rows)),
        ("cols".into(), Json::from(outcome.cols)),
        ("trials".into(), Json::from(u64::from(outcome.trials))),
        ("defects".into(), Json::from(outcome.defects)),
        ("ideal".into(), f32_json_array(&outcome.ideal)),
        ("output".into(), f32_json_array(&outcome.output)),
        ("rms_error_mean".into(), Json::Float(outcome.rms_error_mean)),
        ("rms_error_max".into(), Json::Float(outcome.rms_error_max)),
    ];
    if let Some(label) = &result.label {
        members.push(("label".into(), Json::Str(label.clone())));
    }
    Json::Object(members)
}

/// Renders a [`MapReport`] as its deterministic wire object: counters,
/// the committed placement (success only), and the sorted defect
/// knowledge base as `[row, col, "stuck-open"|"stuck-closed"]` triples.
/// No clocks — identical requests give byte-identical map objects.
pub fn map_to_json(map: &MapReport) -> Json {
    let mut members: Vec<(String, Json)> = vec![
        ("success".into(), Json::Bool(map.stats.success)),
        ("strategy".into(), Json::Str(map.strategy.to_string())),
        ("speculation".into(), Json::from(map.speculation)),
        ("rounds".into(), Json::from(map.rounds)),
        ("attempts".into(), Json::from(map.stats.attempts)),
        ("bist_runs".into(), Json::from(map.stats.bist_runs)),
        ("bisd_runs".into(), Json::from(map.stats.bisd_runs)),
    ];
    if let Some(mapping) = &map.mapping {
        members.push((
            "mapping".into(),
            Json::Array(mapping.iter().map(|&r| Json::from(r)).collect()),
        ));
    }
    members.push((
        "known_bad".into(),
        Json::Array(
            map.known_bad
                .iter()
                .map(|&(r, c, health)| {
                    let kind = match health {
                        CrosspointHealth::StuckOpen => "stuck-open",
                        CrosspointHealth::StuckClosed => "stuck-closed",
                        CrosspointHealth::Good => "good",
                    };
                    Json::Array(vec![Json::from(r), Json::from(c), Json::Str(kind.into())])
                })
                .collect(),
        ),
    ));
    Json::Object(members)
}

/// The wire object of a failed slot (engine errors and spec errors share
/// one shape).
pub fn bad_slot(kind: &str, message: &str) -> Json {
    object(vec![
        ("ok", Json::Bool(false)),
        ("kind", Json::Str(kind.into())),
        ("error", Json::Str(message.into())),
    ])
}

/// Parses the optional `"minimize"` request field.
///
/// # Errors
///
/// A message naming the accepted spellings.
pub fn parse_minimize(v: Option<&Json>) -> Result<MinimizeMode, String> {
    match v.map(|m| m.as_str()) {
        None => Ok(MinimizeMode::Isop),
        Some(Some("isop")) => Ok(MinimizeMode::Isop),
        Some(Some("exact")) => Ok(MinimizeMode::Exact),
        _ => Err("\"minimize\" must be \"isop\" or \"exact\"".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_engine::{Engine, Strategy};

    #[test]
    fn spec_json_roundtrips() {
        let spec = JobSpec {
            expr: Some("x0 x1 + !x0 !x1".into()),
            exprs: None,
            pla: None,
            strategy: Some("diode".into()),
            verify: true,
            label: Some("xnor".into()),
            chip: Some(ChipRequest {
                rows: 16,
                cols: 16,
                seed: 5,
                defect_rate: Some(0.05),
            }),
            map: Some(MapRequest {
                strategy: Some("greedy".into()),
                blind_retries: None,
                speculation: Some(8),
                max_attempts: Some(250),
                seed: 7,
            }),
            mvm: None,
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);
    }

    #[test]
    fn spec_validation_messages() {
        for (body, needle) in [
            ("{}", "expr"),
            ("{\"expr\":\"x0\",\"pla\":\".i 1\"}", "both"),
            ("{\"expr\":\"x0\",\"exprs\":[\"x1\"]}", "exactly one"),
            ("{\"exprs\":\"x0\"}", "array of strings"),
            ("{\"exprs\":[1]}", "array of strings"),
            (
                "{\"exprs\":[\"x0\"],\"chip\":{\"rows\":4,\"cols\":4}}",
                "cannot target a \"chip\"",
            ),
            ("{\"expr\":1}", "string"),
            ("{\"bogus\":1}", "unknown job field"),
            ("{\"expr\":\"x0\",\"chip\":{\"rows\":4}}", "cols"),
            (
                "{\"expr\":\"x0\",\"chip\":{\"rows\":0,\"cols\":4}}",
                "1..=4096",
            ),
            (
                "{\"expr\":\"x0\",\"chip\":{\"rows\":4,\"cols\":4,\"defect_rate\":7.0}}",
                "[0, 1]",
            ),
            ("{\"expr\":\"x0\",\"map\":{}}", "needs a \"chip\""),
            (
                "{\"expr\":\"x0\",\"chip\":{\"rows\":4,\"cols\":4},\"map\":{\"speculation\":0}}",
                "1..=64",
            ),
            (
                "{\"expr\":\"x0\",\"chip\":{\"rows\":4,\"cols\":4},\
                 \"map\":{\"max_attempts\":9999999}}",
                "1..=1000000",
            ),
            (
                "{\"expr\":\"x0\",\"chip\":{\"rows\":4,\"cols\":4},\
                 \"map\":{\"strategy\":\"psychic\"}}",
                "unknown map strategy",
            ),
            (
                "{\"expr\":\"x0\",\"chip\":{\"rows\":4,\"cols\":4},\
                 \"map\":{\"strategy\":\"blind\",\"blind_retries\":3}}",
                "only applies",
            ),
        ] {
            let err = JobSpec::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn specs_lower_to_equivalent_jobs() {
        let spec = JobSpec {
            strategy: Some(Strategy::Diode.name().into()),
            verify: true,
            ..JobSpec::expr("x0 x1 + !x0 !x1")
        };
        let engine = Engine::new();
        let result = engine.run(&spec.to_job().unwrap()).unwrap();
        assert_eq!(
            result.realization.as_ref().unwrap().size().to_string(),
            "2x5"
        );

        // The same function as a PLA body gives the same realization.
        let cover =
            nanoxbar_logic::isop_cover(&nanoxbar_logic::parse_function("x0 x1 + !x0 !x1").unwrap());
        let pla_spec = JobSpec::pla(nanoxbar_logic::pla::write_pla(&cover));
        let pla_spec = JobSpec {
            strategy: Some("diode".into()),
            ..pla_spec
        };
        let pla_result = engine.run(&pla_spec.to_job().unwrap()).unwrap();
        assert_eq!(pla_result.realization, result.realization);
        assert_eq!(
            fingerprint(pla_result.realization.as_ref().unwrap()),
            fingerprint(result.realization.as_ref().unwrap())
        );
    }

    #[test]
    fn results_render_without_timing_fields() {
        let engine = Engine::new();
        let spec = JobSpec {
            verify: true,
            label: Some("j".into()),
            ..JobSpec::expr("x0 + x1")
        };
        let json = result_to_json(&engine.run(&spec.to_job().unwrap()));
        assert_eq!(json.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(json.get("verified"), Some(&Json::Bool(true)));
        assert_eq!(json.get("label").unwrap().as_str(), Some("j"));
        assert!(json.get("elapsed").is_none(), "bodies stay deterministic");
        let err = result_to_json(&Err(Error::ConstantFunction { num_vars: 2 }));
        assert_eq!(err.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(err.get("kind").unwrap().as_str(), Some("constant-function"));
    }

    #[test]
    fn map_specs_lower_to_map_jobs_and_render() {
        let engine = Engine::new();
        let json = Json::parse(
            "{\"expr\":\"x0 x1 + !x0 !x1\",\
             \"chip\":{\"rows\":16,\"cols\":16,\"seed\":3,\"defect_rate\":0.05},\
             \"map\":{\"strategy\":\"greedy\",\"speculation\":4,\"seed\":9}}",
        )
        .unwrap();
        let spec = JobSpec::from_json(&json).unwrap();
        let result = engine.run(&spec.to_job().unwrap()).unwrap();
        let report = result.map.as_ref().expect("map slot carries a report");
        assert!(report.stats.success);
        assert!(result.flow.is_none(), "map replaces the flow");

        let rendered = result_to_json(&Ok(result));
        let map = rendered.get("map").expect("rendered map object");
        assert_eq!(map.get("success"), Some(&Json::Bool(true)));
        assert_eq!(map.get("strategy").unwrap().as_str(), Some("greedy"));
        assert_eq!(map.get("speculation").unwrap().as_u64(), Some(4));
        assert_eq!(
            map.get("mapping").unwrap().as_array().unwrap().len(),
            2,
            "one row per product"
        );
        assert!(map.get("known_bad").unwrap().as_array().is_some());
    }

    fn mvm_request(rows: usize, cols: usize) -> MvmRequest {
        MvmRequest {
            rows,
            cols,
            weights: vec![0.5; rows * cols],
            input: vec![1.0; cols],
            chip_seed: 3,
            p_open: 0.02,
            p_closed: 0.01,
            noise_sigma: 0.05,
            trials: 2,
        }
    }

    #[test]
    fn mvm_specs_roundtrip_and_lower_to_mvm_jobs() {
        let spec = JobSpec {
            label: Some("analog".into()),
            mvm: Some(mvm_request(2, 3)),
            ..JobSpec::default()
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let engine = Engine::new();
        let result = engine.run(&spec.to_job().unwrap()).unwrap();
        assert_eq!(result.strategy, "analog-mvm");
        assert!(result.realization.is_none());
        let rendered = result_to_json(&Ok(result));
        assert_eq!(rendered.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(
            rendered.get("strategy").unwrap().as_str(),
            Some("analog-mvm")
        );
        assert_eq!(rendered.get("rows").unwrap().as_u64(), Some(2));
        assert_eq!(rendered.get("trials").unwrap().as_u64(), Some(2));
        assert_eq!(rendered.get("label").unwrap().as_str(), Some("analog"));
        assert_eq!(rendered.get("ideal").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(rendered.get("output").unwrap().as_array().unwrap().len(), 2);
        assert!(rendered.get("rms_error_mean").is_some());
        assert!(rendered.get("fingerprint").is_none(), "mvm has no lattice");
        assert!(
            rendered.get("elapsed").is_none(),
            "bodies stay deterministic"
        );
    }

    #[test]
    fn mvm_parse_errors_name_the_field() {
        for (body, needle) in [
            ("{\"mvm\":[]}", "must be a JSON object"),
            ("{\"mvm\":{}}", "needs \"rows\""),
            ("{\"mvm\":{\"rows\":2,\"cols\":0}}", "1..=4096"),
            (
                "{\"mvm\":{\"rows\":2,\"cols\":2,\"weights\":\"x\"}}",
                "array of numbers",
            ),
            (
                "{\"mvm\":{\"rows\":2,\"cols\":2,\"weights\":[0,0,0,0],\
                 \"input\":[0,0],\"trials\":0}}",
                "1..=4096",
            ),
            (
                "{\"mvm\":{\"rows\":2,\"cols\":2,\"weights\":[0,0,0,0],\
                 \"input\":[0,0],\"bogus\":1}}",
                "unknown mvm field",
            ),
            (
                "{\"expr\":\"x0\",\"mvm\":{\"rows\":1,\"cols\":1,\
                 \"weights\":[1],\"input\":[1]}}",
                "cannot be combined",
            ),
        ] {
            let err = JobSpec::from_json(&Json::parse(body).unwrap()).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn bad_mvm_specs_fail_at_the_boundary_not_as_asserts() {
        // Parses fine (every field structurally valid) but is a bad spec:
        // the probabilities sum past 1, which would trip
        // DefectMap::random_uniform's assert on a worker thread.
        let mut bad = mvm_request(2, 2);
        bad.p_open = 0.8;
        bad.p_closed = 0.7;
        let spec = JobSpec {
            mvm: Some(bad),
            ..JobSpec::default()
        };
        let err = spec.to_job().unwrap_err();
        assert!(err.contains("p_open + p_closed"), "{err}");
        for (p_open, p_closed, sigma, needle) in [
            (-0.1, 0.0, 0.0, "p_open"),
            (0.0, f64::NAN, 0.0, "p_closed"),
            (0.0, 0.0, f32::NAN, "noise_sigma"),
        ] {
            let mut bad = mvm_request(2, 2);
            bad.p_open = p_open;
            bad.p_closed = p_closed;
            bad.noise_sigma = sigma;
            let spec = JobSpec {
                mvm: Some(bad),
                ..JobSpec::default()
            };
            let err = spec.to_job().unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
    }

    #[test]
    fn limits_parsing_rejects_out_of_range_budgets() {
        assert_eq!(parse_limits(None).unwrap(), None);
        let limits = parse_limits(Some(
            &Json::parse("{\"time_ms\":250,\"sat_conflicts\":1000}").unwrap(),
        ))
        .unwrap()
        .unwrap();
        assert_eq!(limits.time, Some(Duration::from_millis(250)));
        assert_eq!(limits.sat_conflicts, Some(1000));
        assert_eq!(limits.max_area, None);
        for (body, needle) in [
            ("{\"time_ms\":0}", "1..=60000"),
            ("{\"time_ms\":3600000}", "1..=60000"),
            ("{\"sat_conflicts\":0}", "1..=1000000000"),
            ("{\"budget\":1}", "unknown limits field"),
            ("[1]", "must be a JSON object"),
        ] {
            let err = parse_limits(Some(&Json::parse(body).unwrap())).unwrap_err();
            assert!(err.contains(needle), "{body}: {err}");
        }
    }

    #[test]
    fn multi_expr_specs_roundtrip_and_render_outputs() {
        let spec = JobSpec {
            exprs: Some(vec!["x0 ^ x1 ^ x2".into(), "x0 x1 + x0 x2 + x1 x2".into()]),
            verify: true,
            label: Some("adder".into()),
            ..JobSpec::default()
        };
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(back, spec);

        let engine = Engine::new();
        let result = engine.run(&spec.to_job().unwrap()).unwrap();
        assert_eq!(result.strategy, "bdd");
        assert_eq!(result.verified, Some(true));
        let realization = result.realization.clone().unwrap();
        assert_eq!(realization.num_outputs(), 2);

        let rendered = result_to_json(&Ok(result));
        assert_eq!(rendered.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(rendered.get("strategy").unwrap().as_str(), Some("bdd"));
        assert_eq!(
            rendered.get("technology").unwrap().as_str(),
            Some("sneak-path")
        );
        assert_eq!(rendered.get("outputs").unwrap().as_u64(), Some(2));
        assert_eq!(rendered.get("verified"), Some(&Json::Bool(true)));
        assert!(rendered.get("fingerprint").is_some());

        // Single-output bodies keep their historical shape: no "outputs".
        let single = result_to_json(&engine.run(&JobSpec::expr("x0 + x1").to_job().unwrap()));
        assert!(single.get("outputs").is_none());
    }

    #[test]
    fn multi_exprs_align_arities_before_compiling() {
        // "x0" is arity 1, "x1 x2" is arity 3 — the spec zero-extends the
        // narrow output so the shared crossbar verifies both.
        let spec = JobSpec {
            exprs: Some(vec!["x0".into(), "x1 x2".into()]),
            verify: true,
            ..JobSpec::default()
        };
        let engine = Engine::new();
        let result = engine.run(&spec.to_job().unwrap()).unwrap();
        assert_eq!(result.verified, Some(true));
        assert_eq!(result.realization.unwrap().num_outputs(), 2);
    }

    #[test]
    fn multi_output_pla_specs_lower_to_bdd_jobs() {
        let body = "\
.i 3
.o 2
11- 01
1-1 01
-11 01
100 10
010 10
001 10
111 10
.e
";
        let engine = Engine::new();
        let result = engine.run(&JobSpec::pla(body).to_job().unwrap()).unwrap();
        assert_eq!(result.strategy, "bdd");
        assert_eq!(result.realization.unwrap().num_outputs(), 2);

        // Any non-"bdd" strategy on a multi-output body is a spec error.
        let wrong = JobSpec {
            strategy: Some("diode".into()),
            ..JobSpec::pla(body)
        };
        let err = wrong.to_job().unwrap_err();
        assert!(err.contains("only strategy \"bdd\""), "{err}");

        // An empty exprs list never reaches the engine.
        let empty = JobSpec {
            exprs: Some(Vec::new()),
            ..JobSpec::default()
        };
        let err = empty.to_job().unwrap_err();
        assert!(err.contains("at least one output"), "{err}");
    }

    #[test]
    fn multi_spec_engine_errors_carry_their_own_kind() {
        // A constant output is a ConstantFunction; a mixed-arity set built
        // directly (bypassing the spec's alignment) is a MultiSpec.
        let engine = Engine::new();
        let spec = JobSpec {
            exprs: Some(vec!["x0 + !x0".into()]),
            ..JobSpec::default()
        };
        let rendered = result_to_json(&engine.run(&spec.to_job().unwrap()));
        assert_eq!(rendered.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(
            rendered.get("kind").unwrap().as_str(),
            Some("constant-function")
        );

        let diode_multi = JobSpec {
            exprs: Some(vec!["x0".into(), "x1".into()]),
            strategy: Some("diode".into()),
            ..JobSpec::default()
        };
        let rendered = result_to_json(&engine.run(&diode_multi.to_job().unwrap()));
        assert_eq!(rendered.get("ok"), Some(&Json::Bool(false)));
        assert_eq!(rendered.get("kind").unwrap().as_str(), Some("multi-spec"));
    }

    #[test]
    fn minimize_parsing() {
        assert_eq!(parse_minimize(None).unwrap(), MinimizeMode::Isop);
        assert_eq!(
            parse_minimize(Some(&Json::Str("exact".into()))).unwrap(),
            MinimizeMode::Exact
        );
        assert!(parse_minimize(Some(&Json::Str("fancy".into()))).is_err());
        assert!(parse_minimize(Some(&Json::Int(3))).is_err());
    }
}
