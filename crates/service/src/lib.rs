//! # nanoxbar-service
//!
//! A **dependency-free HTTP/1.1 synthesis service** over the
//! [`nanoxbar_engine`] batch engine: non-blocking sockets driven by a
//! std-only readiness reactor (see *Event-driven core* below), a bounded
//! worker pool for request execution, hand-rolled JSON ([`wire`]), and a
//! content-addressed result cache shared across requests
//! ([`nanoxbar_engine::ResultCache`]). Every synthesis request runs as an
//! [`Engine::run_batch`](nanoxbar_engine::Engine::run_batch) call, so the
//! work fans out on the `nanoxbar-par` work-stealing pool regardless of
//! which HTTP worker carried the request.
//!
//! ## Endpoints
//!
//! | Endpoint              | Meaning                                        |
//! |-----------------------|------------------------------------------------|
//! | `POST /v1/synthesize` | One job: expression or PLA body + options      |
//! | `POST /v1/map`        | One job mapped onto a defective chip with BISM (resumable sessions via `"session"`/`"resume"`) |
//! | `POST /v1/mvm`        | One analog matrix-vector product on a simulated crossbar chip |
//! | `POST /v1/batch`      | Ordered multi-job with per-slot isolation (map and mvm slots welcome); `"stream":true` chunks slots out as they finish |
//! | `GET /healthz`        | Liveness + registered strategies               |
//! | `GET /metrics`        | Prometheus text: requests, latency histograms, map and mvm outcomes, cache hits/misses/weight, pool steals |
//!
//! Every request accepts optional top-level `"minimize"` and `"limits"`
//! fields; `"limits"` (`{"time_ms": 1..=60000, "sat_conflicts":
//! 1..=10^9}`) bounds each job of the request so no accepted request can
//! hold a pool worker indefinitely — out-of-range budgets are a `400`.
//!
//! ## Event-driven core
//!
//! Connections are owned by a single reactor thread built on the
//! vendored `polling` readiness API (epoll(7) on Linux, poll(2)
//! elsewhere). Sockets are non-blocking end to end: the reactor parks
//! idle keep-alive connections at **zero thread cost**, accumulates
//! request bytes as they arrive, and hands a connection to the worker
//! pool only once a complete request sits in its read buffer. Responses
//! travel back through the reactor as non-blocking writes against a
//! per-connection write buffer, so a slow reader never holds a worker
//! either. A connection's lifecycle:
//!
//! ```text
//!            accept                    complete request parsed
//! listener ─────────▶ Reading ──────────────────────────▶ Dispatched
//!                      ▲   │ partial bytes arm a                │ worker runs the job(s);
//!                      │   │ read-timeout timer;                │ response (or chunked
//!                      │   │ a parked idle conn                 │ stream) queued to the
//!                      │   │ holds NO timer                     │ reactor
//!                      │   ▼                                    ▼
//!                      │  timeout ──▶ close            write buffer drains
//!                      │                               (Streaming: one chunk
//!                      │        keep-alive: back        per finished job)
//!                      └────────────── to Reading ◀─────────────┘
//!                                                               │ connection limit hit /
//!                                                               ▼ drain
//!                                                    Closing ──▶ 503 + Retry-After,
//!                                                               then close after grace
//! ```
//!
//! Read/header timeouts are reactor timers kept in a side map that only
//! holds *active* deadlines, so per-wakeup bookkeeping costs O(active
//! requests), not O(parked connections) — 512 idle keep-alive
//! connections cost a service under load within a few percent of zero.
//! Graceful drain, `--max-body-bytes`, and 503 load-shedding with
//! `Retry-After` all survive unchanged on the reactor, and outbound
//! peer fills use the same non-blocking machinery (`peer::TcpDialer`
//! waits for readiness with a deadline instead of blocking in `read`).
//!
//! ### Streaming batches
//!
//! `POST /v1/batch` with `"stream":true` answers with
//! `Transfer-Encoding: chunked` and emits each slot **the moment its
//! job finishes**, in input order — time-to-first-result no longer
//! waits for the slowest slot. De-chunked, the bytes are identical to
//! the buffered response for the same jobs:
//!
//! ```console
//! $ curl -sN http://127.0.0.1:8080/v1/batch \
//!     -d '{"stream":true,"jobs":[
//!           {"expr":"x0 x1","strategy":"diode","label":"fast"},
//!           {"expr":"x0 x1 x2 + x3 x4 x5 + x6 x7 x8",
//!            "chip":{"rows":48,"cols":48,"seed":7,"defect_rate":0.6},
//!            "map":{"strategy":"greedy","max_attempts":150000}}]}'
//! {"count":2,"results":[{"ok":true,...,"label":"fast"}     <- arrives immediately
//! ,{"ok":true,...,"map":{...}}                             <- arrives when the slow map finishes
//! ]}
//! ```
//!
//! ### Tuning
//!
//! | Knob               | Default | Meaning                                            |
//! |--------------------|---------|----------------------------------------------------|
//! | `--workers`        | 4       | Threads that *execute* requests; sizes for CPU work |
//! | `--max-conns`      | 4096    | Open-connection ceiling; beyond it new clients are shed with `503` + `Retry-After` |
//! | `--read-timeout`   | 5s      | Reactor timer on a *partially received* request (slow-loris bound); parked idle connections are exempt |
//! | `--max-body-bytes` | 1 MiB   | Request-body ceiling, enforced while bytes accumulate in the reactor |
//!
//! Workers bound concurrent *execution*; `--max-conns` bounds concurrent
//! *connections*. They are independent: thousands of idle keep-alive
//! clients need no extra workers, while CPU-heavy batch load wants
//! `--workers` near the core count regardless of connection count.
//! `GET /healthz` reports the reactor's live connection gauge and
//! `GET /metrics` exports `nanoxbar_reactor_*` families (connections,
//! ready-queue depth, wakeups, timeouts, write-buffer high-water).
//!
//! Responses carry **no wall-clock fields** and use a deterministic
//! encoder, so identical jobs produce byte-identical bodies whether they
//! were synthesised fresh, served from the cache, or deduplicated inside
//! a batch — latency lives in `/metrics`. That includes `/v1/map` (the
//! speculative-parallel mapper commits candidates in deterministic
//! order) and `/v1/mvm`: the analog kernels fix every f32 reduction's
//! order (each output row is one left-to-right sum, parallel chunks
//! split at constant boundaries), and f32 values widen exactly to f64
//! on the wire — so even floating-point bodies are byte-identical at
//! every `NANOXBAR_THREADS`.
//!
//! ## Curl session
//!
//! Start the server (`nanoxbar serve --addr 127.0.0.1:8080`), then:
//!
//! ```console
//! $ curl -s http://127.0.0.1:8080/v1/synthesize \
//!     -d '{"expr":"x0 x1 + !x0 !x1","strategy":"diode","verify":true}'
//! {"ok":true,"strategy":"diode","technology":"diode","rows":2,"cols":5,
//!  "area":10,"fingerprint":"9e86b12433c82b5e","verified":true}
//!
//! $ curl -s http://127.0.0.1:8080/v1/batch \
//!     -d '{"minimize":"exact","jobs":[
//!           {"expr":"x0 x1","strategy":"fet","label":"and2"},
//!           {"expr":"x0 + !x0","strategy":"diode"},
//!           {"expr":"x0 ^ x1","chip":{"rows":16,"cols":16,"seed":5,"defect_rate":0.05}}]}'
//! {"count":3,"results":[
//!  {"ok":true,"strategy":"fet",...,"label":"and2"},
//!  {"ok":false,"kind":"constant-function","error":"constant 1-variable function needs no crossbar"},
//!  {"ok":true,"strategy":"dual-lattice",...,"flow":{"bist_passed":true,...}}]}
//!
//! $ curl -s http://127.0.0.1:8080/v1/map \
//!     -d '{"expr":"x0 x1 + !x0 !x1",
//!          "chip":{"rows":32,"cols":32,"seed":7,"defect_rate":0.10},
//!          "map":{"strategy":"greedy","speculation":8,"max_attempts":400,"seed":1}}'
//! {"ok":true,"strategy":"dual-lattice",...,"map":{"success":true,
//!  "strategy":"greedy","speculation":8,"rounds":1,"attempts":1,
//!  "bist_runs":1,"bisd_runs":0,"mapping":[13,26],"known_bad":[]}}
//!
//! $ curl -s http://127.0.0.1:8080/v1/synthesize \
//!     -d '{"expr":"x0 x1 + x0 x2 + x1 x2","strategy":"optimal-lattice",
//!          "limits":{"time_ms":500,"sat_conflicts":100000}}'
//! {"ok":true,"strategy":"optimal-lattice",...}
//!
//! $ curl -s http://127.0.0.1:8080/metrics | grep -E 'cache|maps'
//! nanoxbar_maps_total 1
//! nanoxbar_map_failures_total 0
//! nanoxbar_cache_hits_total 0
//! nanoxbar_cache_misses_total 4
//! nanoxbar_cache_weight 18
//! ...
//! ```
//!
//! ## Analog MVM
//!
//! `POST /v1/mvm` runs one analog in-memory matrix-vector product: the
//! signed weight matrix is programmed as differential conductance pairs
//! onto a simulated crossbar drawn from the request's chip parameters
//! (stuck-open/closed defects, static device variation, first-order IR
//! drop), then `trials` Monte-Carlo programming-noise draws execute
//! `W·x` and are scored against the ideal product:
//!
//! ```console
//! $ curl -s http://127.0.0.1:8080/v1/mvm \
//!     -d '{"mvm":{"rows":2,"cols":3,
//!           "weights":[0.5,-0.25,1,0,0.75,-1],"input":[1,0.5,-0.5],
//!           "chip_seed":7,"p_open":0.02,"p_closed":0.01,
//!           "noise_sigma":0.05,"trials":8}}'
//! {"ok":true,"strategy":"analog-mvm","rows":2,"cols":3,"trials":8,
//!  "defects":0,"ideal":[-0.125,0.875],"output":[-0.149...,0.862...],
//!  "rms_error_mean":0.030...,"rms_error_max":0.064...}
//!
//! # mvm slots ride along in a batch next to synthesis and map slots;
//! # bad chip parameters fail only their slot (kind "mvm-spec").
//! $ curl -s http://127.0.0.1:8080/v1/batch \
//!     -d '{"jobs":[{"expr":"x0 x1","strategy":"diode"},
//!           {"mvm":{"rows":2,"cols":2,"weights":[1,0,0,1],"input":[1,1],
//!             "p_open":0.8,"p_closed":0.7,"trials":4}}]}'
//! {"count":2,"results":[{"ok":true,...},
//!  {"ok":false,"kind":"bad-request","error":"p_open + p_closed must stay below 1, ..."}]}
//! ```
//!
//! The chip draw is deterministic in `(dimensions, chip_seed)` and trial
//! `t`'s noise is seeded from `(chip_seed, t)`, so repeating a request —
//! on any replica, at any thread count — returns the same body byte for
//! byte. Duplicate mvm slots in one batch share their chip-independent
//! programming step (an exact-weight-bits memo, the analog analogue of
//! the result cache), while the chip-specific Monte-Carlo execution
//! always runs per slot.
//!
//! ## Strategies
//!
//! The `"strategy"` field selects a registered synthesis backend
//! (`GET /healthz` lists them):
//!
//! | Strategy          | Technology     | Scope                                       |
//! |-------------------|----------------|---------------------------------------------|
//! | `diode`           | `diode`        | Single-output two-terminal diode arrays     |
//! | `fet`             | `fet`          | Single-output complementary FET columns     |
//! | `dual-lattice`    | `four-terminal`| Single-output dual-based lattices (default) |
//! | `optimal-lattice` | `four-terminal`| Single-output SAT-minimal lattices          |
//! | `bdd`             | `sneak-path`   | 1..=K outputs on one shared BDD crossbar    |
//!
//! ## Multi-output BDD jobs
//!
//! A job carrying `"exprs"` (an array of expressions, one per output;
//! exclusive with `"expr"`/`"pla"`/`"mvm"` and with `"chip"`) compiles
//! all outputs into **one shared sneak-path crossbar** through the
//! `bdd` backend: a single ROBDD with a deterministic sifted variable
//! order, nodes as rows and kept edges as columns, so outputs sharing
//! subgraphs share crosspoints. Outputs of different arity are
//! zero-extended to the widest. A PLA body whose `.o` declares more
//! than one output takes the same route. The response gains an
//! `"outputs"` member when more than one function was realised —
//! single-output bodies keep their historical shape:
//!
//! ```console
//! $ curl -s http://127.0.0.1:8080/v1/synthesize \
//!     -d '{"exprs":["x0 ^ x1 ^ x2","x0 x1 + x0 x2 + x1 x2"],"verify":true}'
//! {"ok":true,"strategy":"bdd","technology":"sneak-path","rows":9,"cols":13,
//!  "area":26,"fingerprint":"f69f0354f27fc117","outputs":2,"verified":true}
//!
//! # Only "bdd" realises multi-output jobs: a misdeclared strategy is a
//! # typed per-slot error, even when batched next to its valid twin.
//! $ curl -s http://127.0.0.1:8080/v1/synthesize \
//!     -d '{"exprs":["x0 ^ x1 ^ x2","x0 x1 + x0 x2 + x1 x2"],"strategy":"fet"}'
//! {"ok":false,"kind":"multi-spec","error":"bad multi-output job: strategy
//!  \"fet\" cannot realise multi-output jobs (use \"bdd\")"}
//!
//! $ curl -s http://127.0.0.1:8080/metrics | grep multi
//! nanoxbar_multi_jobs_total 1
//! nanoxbar_multi_outputs_total 2
//! ```
//!
//! Verification replays **every** output word-parallel through the
//! sneak-path evaluator, and multi-output realizations persist and
//! peer-fill like any other cache entry (the durable record re-runs the
//! deterministic compiler, so replay is bit-identical).
//!
//! ## Incremental mapping sessions
//!
//! A `/v1/map` request carrying a `"session"` object runs the BISM
//! mapper a bounded number of rounds at a time and checkpoints the
//! mapper's state between requests, so a long self-mapping run can be
//! driven incrementally — and, with a state dir, survive a server
//! restart mid-run:
//!
//! ```console
//! $ curl -s http://127.0.0.1:8080/v1/map \
//!     -d '{"expr":"x0 x1 + !x0 !x1",
//!          "chip":{"rows":10,"cols":10,"seed":11,"defect_rate":0.2},
//!          "session":{"id":"inc","rounds":1}}'
//! {"ok":true,"session":{"id":"inc","done":false,"rounds":1,"attempts":8,
//!  "bist_runs":8,"bisd_runs":1,"known_bad":3}}
//!
//! $ curl -s http://127.0.0.1:8080/v1/map \
//!     -d '{"session":{"id":"inc","rounds":1},"resume":true}'
//! {"ok":true,"strategy":"dual-lattice",...,"map":{"success":true,...},
//!  "session":{"id":"inc","done":true,"rounds":2}}
//! ```
//!
//! Omitting `"rounds"` on a resume runs the session to completion. The
//! finished response is **byte-identical** (apart from the `"session"`
//! trailer) to a one-shot `/v1/map` of the same job — checkpointing, and
//! even crash/restart cycles between rounds, never change the result.
//! Sessions are single-writer (a concurrent resume of a busy id gets a
//! `400`), expire after an idle TTL, and are dropped once completed.
//!
//! ## Durability & recovery
//!
//! With `nanoxbar serve --state-dir DIR`, the service persists its
//! result cache and live mapper sessions to two append-only logs
//! (`cache.log`, `sessions.log`) in that directory. Every record is
//! framed as `[len][generation][crc32]` + payload and appended by a
//! background flusher that batches writes and syncs once per batch, so
//! the request path never blocks on `fsync`.
//!
//! On boot the logs are replayed: a torn or corrupt record **tail** —
//! the signature of a crash mid-append — is truncated and counted, never
//! an error, and a tampered record body is skipped as a decode error
//! rather than trusted. The recovered prefix is always valid: a
//! warm-started server answers previously-cached jobs byte-identically
//! and picks checkpointed sessions back up ([`Service::recovery`] and
//! the `"persist"` member of `/healthz` report what replay saw). Logs
//! are compacted in place — rewritten from live state under a bumped
//! generation — once dead records outweigh live ones; IO failures
//! degrade gracefully (counted, then persistence disabled) without
//! taking the service down. The whole stack is exercised against a
//! fault-injecting in-memory filesystem (`nanoxbar-store`): short
//! writes, `ENOSPC`, failing `fsync`, and crash-at-byte-N torn tails.
//!
//! ## Fleet operations
//!
//! `nanoxbar serve --peers HOST:PORT,...` joins N replicas into a fleet:
//! the peers plus the replica itself form a consistent-hash ring over
//! the content-addressed cache key. A cache miss whose key the ring
//! assigns to a peer is first **filled from that peer** over the normal
//! wire format (`POST /v1/peer/fill`); only if the peer cannot answer —
//! down, shedding, slow — does the replica synthesize locally. Because
//! responses are deterministic and byte-identical everywhere, a peer
//! fill and a local synthesis are indistinguishable to clients: **no
//! peer failure is ever client-visible**. Each peer gets per-attempt
//! deadlines, bounded retries with jittered exponential backoff, and a
//! circuit breaker that fails fast after consecutive failures, then
//! re-probes half-open after a cooldown.
//!
//! A three-replica session (each lists the *other two* in `--peers`):
//!
//! ```console
//! $ nanoxbar serve --addr 127.0.0.1:8081 --peers 127.0.0.1:8082,127.0.0.1:8083 &
//! $ nanoxbar serve --addr 127.0.0.1:8082 --peers 127.0.0.1:8081,127.0.0.1:8083 &
//! $ nanoxbar serve --addr 127.0.0.1:8083 --peers 127.0.0.1:8081,127.0.0.1:8082 &
//!
//! # Warm replica 1, then ask replica 2 for the same job: if the ring
//! # assigns the key to replica 1, replica 2 fills from it instead of
//! # re-synthesising — the bodies are byte-identical either way.
//! $ curl -s http://127.0.0.1:8081/v1/synthesize -d '{"expr":"x0 x1 + !x0 !x1"}' > a.json
//! $ curl -s http://127.0.0.1:8082/v1/synthesize -d '{"expr":"x0 x1 + !x0 !x1"}' > b.json
//! $ cmp a.json b.json && curl -s http://127.0.0.1:8082/metrics | grep peer_fills
//! nanoxbar_peer_fills_total 1
//!
//! # Sessions migrate: start an incremental map on replica 1, resume it
//! # on replica 3 — replica 3 fetches the checkpoint record from
//! # replica 1 (which hands off ownership) and continues bit-identically.
//! $ curl -s http://127.0.0.1:8081/v1/map \
//!     -d '{"expr":"x0 x1","chip":{"rows":10,"cols":10,"seed":11,"defect_rate":0.2},
//!          "session":{"id":"mig","rounds":1}}'
//! $ curl -s http://127.0.0.1:8083/v1/map -d '{"session":{"id":"mig"},"resume":true}'
//!
//! # Kill a replica mid-session: the survivors keep serving (the dead
//! # peer's breaker opens after `--breaker-threshold` failures, visible
//! # in /healthz "peers" and the nanoxbar_peer_breaker_state gauge),
//! # and every request still succeeds via local synthesis.
//! $ kill -9 %1
//! $ curl -s http://127.0.0.1:8082/v1/synthesize -d '{"expr":"x0 x1 + !x0 !x1"}' | cmp - a.json
//! ```
//!
//! Tuning knobs (CLI flags mirror [`ServiceConfig`] fields):
//!
//! | Knob                | Default | Meaning                                        |
//! |---------------------|---------|------------------------------------------------|
//! | `peer_deadline`     | 1s      | Per-attempt budget for one peer exchange (connect → full response); also defeats slow-loris peers |
//! | `peer_retries`      | 2       | Extra attempts after the first failure          |
//! | `peer_backoff`      | 25ms    | Base retry delay; doubles per attempt, ±50% jitter |
//! | `peer_backoff_cap`  | 250ms   | Ceiling on the delay; also caps an honored `Retry-After` |
//! | `breaker_threshold` | 3       | Consecutive failures that trip a peer's breaker |
//! | `breaker_cooldown`  | 2s      | Fail-fast window before the half-open probe     |
//!
//! A load-shedding replica answers `503` with a `Retry-After` header;
//! peers honor it (capped at `peer_backoff_cap`) before retrying, and a
//! shed does **not** count against the breaker — the peer is alive, just
//! busy. The whole fleet path is testable without real packet loss: the
//! [`peer::NetDialer`] seam accepts [`peer::MemNet`], an in-memory
//! network that injects refused connections, black-hole timeouts,
//! mid-response resets, and slow-loris trickle per scripted fault queues.
//!
//! ## In-process use
//!
//! [`Server::bind`] + [`Server::start`] run the service on background
//! threads; bind `"127.0.0.1:0"` for an ephemeral port (tests, examples,
//! load generators). [`Service`] is the socket-free router, directly
//! drivable with [`http::Request`] values.
//!
//! ```no_run
//! use nanoxbar_service::{Server, ServiceConfig};
//!
//! let server = Server::bind(ServiceConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServiceConfig::default()
//! })?;
//! let handle = server.start()?;
//! println!("serving on http://{}", handle.addr());
//! # handle.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod http;
pub mod metrics;
pub mod peer;
mod persist;
mod reactor;
mod server;
mod session;
pub mod wire;

pub use api::{error_kind, fingerprint, result_to_json, ChipRequest, JobSpec, MvmRequest};
pub use metrics::{Histogram, Metrics};
pub use peer::{BreakerState, MemNet, NetDialer, NetFault, PeerStatus, TcpDialer};
pub use persist::RecoveryInfo;
pub use server::{Server, ServerHandle, Service, ServiceConfig};
pub use wire::{Json, WireError};
