//! Crash-safe durable state: the wire-JSON record codecs for the two
//! append-only logs (`cache.log`, `sessions.log`) and the background
//! [`StatePersister`] that batches appends, syncs them, and compacts a
//! log once its dead weight dwarfs the live state.
//!
//! Records are framed and checksummed by [`nanoxbar_store`]; this module
//! only decides what the payload bytes *mean*. Payloads are the service's
//! own deterministic [`wire`](crate::wire) JSON. Two encoding rules keep
//! them faithful:
//!
//! * **Full-range `u64`s travel as 16-digit hex strings** — truth-table
//!   words and RNG state use all 64 bits, and the wire integer is `i64`.
//! * **Realizations are persisted structurally** (grid points, literals,
//!   lattice sites), then rebuilt through the checked `from_parts`/
//!   `from_rows` constructors — persisted bytes are data, not code, so a
//!   tampered record becomes a counted decode error, never a panic.
//!   BDD sneak-path crossbars persist as their *output truth tables* and
//!   are rebuilt by the deterministic compiler, so a decoded crossbar is
//!   bit-identical to the one that was stored and can never be
//!   structurally invalid.
//!
//! Replay happens in [`Service::new`](crate::Service) *before* the cache
//! insert listener is registered, so preloaded entries are not re-logged.

use std::io;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nanoxbar_crossbar::{ArraySize, Crossbar, DiodeArray, FetArray};
use nanoxbar_engine::{
    CacheKey, CachedSynthesis, MapperSnapshot, MinimizeMode, Realization, ResultCache,
};
use nanoxbar_lattice::{Lattice, Site};
use nanoxbar_logic::{word_len, Cover, Cube, Literal, TruthTable};
use nanoxbar_reliability::defect::CrosspointHealth;
use nanoxbar_reliability::mapper::Defect;
use nanoxbar_store::{open_log, rewrite_log, LogWriter, Vfs};

use crate::metrics::Metrics;
use crate::session::SessionTable;
use crate::wire::{object, Json};

/// File name of the result-cache log inside the state directory.
pub const CACHE_LOG: &str = "cache.log";
/// File name of the mapper-session log inside the state directory.
pub const SESSION_LOG: &str = "sessions.log";

/// Record format version; bump on incompatible payload changes.
const RECORD_VERSION: i64 = 1;

/// Compaction threshold: a log is rewritten once it holds more than
/// `2 × live + COMPACT_SLACK` records. The slack keeps tiny state from
/// compacting on every append.
const COMPACT_SLACK: u64 = 64;

// ---------------------------------------------------------------------
// Scalar codecs
// ---------------------------------------------------------------------

/// A full-range `u64` as a 16-digit hex wire string (the wire integer is
/// `i64`, which cannot carry truth-table words or RNG state faithfully).
fn hex64(v: u64) -> Json {
    Json::Str(format!("{v:016x}"))
}

fn parse_hex64(v: &Json) -> Result<u64, String> {
    let text = v.as_str().ok_or("expected a hex string")?;
    u64::from_str_radix(text, 16).map_err(|_| format!("bad hex u64 {text:?}"))
}

fn parse_usize(v: &Json, what: &str) -> Result<usize, String> {
    v.as_u64()
        .map(|n| n as usize)
        .ok_or_else(|| format!("{what} must be a non-negative integer"))
}

fn parse_u64(v: &Json, what: &str) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| format!("{what} must be a non-negative integer"))
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn minimize_to_str(mode: MinimizeMode) -> &'static str {
    match mode {
        MinimizeMode::Isop => "isop",
        MinimizeMode::Exact => "exact",
    }
}

fn parse_minimize_mode(v: &Json) -> Result<MinimizeMode, String> {
    match v.as_str() {
        Some("isop") => Ok(MinimizeMode::Isop),
        Some("exact") => Ok(MinimizeMode::Exact),
        _ => Err("bad minimize mode".into()),
    }
}

fn literal_to_str(lit: Literal) -> String {
    if lit.is_positive() {
        format!("x{}", lit.var())
    } else {
        format!("!x{}", lit.var())
    }
}

fn parse_literal(v: &Json) -> Result<Literal, String> {
    let text = v.as_str().ok_or("literal must be a string")?;
    let (positive, rest) = match text.strip_prefix('!') {
        Some(rest) => (false, rest),
        None => (true, text),
    };
    let var: usize = rest
        .strip_prefix('x')
        .and_then(|d| d.parse().ok())
        .ok_or_else(|| format!("bad literal {text:?}"))?;
    Ok(Literal::new(var, positive))
}

fn site_to_json(site: Site) -> Json {
    match site {
        Site::Const(false) => Json::Str("0".into()),
        Site::Const(true) => Json::Str("1".into()),
        Site::Literal(lit) => Json::Str(literal_to_str(lit)),
    }
}

fn parse_site(v: &Json) -> Result<Site, String> {
    match v.as_str() {
        Some("0") => Ok(Site::Const(false)),
        Some("1") => Ok(Site::Const(true)),
        _ => Ok(Site::Literal(parse_literal(v)?)),
    }
}

fn health_to_str(health: CrosspointHealth) -> &'static str {
    match health {
        CrosspointHealth::Good => "good",
        CrosspointHealth::StuckOpen => "stuck-open",
        CrosspointHealth::StuckClosed => "stuck-closed",
    }
}

fn parse_health(v: &Json) -> Result<CrosspointHealth, String> {
    match v.as_str() {
        Some("good") => Ok(CrosspointHealth::Good),
        Some("stuck-open") => Ok(CrosspointHealth::StuckOpen),
        Some("stuck-closed") => Ok(CrosspointHealth::StuckClosed),
        other => Err(format!("bad crosspoint health {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Realization / cover codecs
// ---------------------------------------------------------------------

fn points_to_json(grid: &Crossbar) -> Json {
    Json::Array(
        grid.programmed_points()
            .map(|(r, c)| Json::Array(vec![Json::from(r), Json::from(c)]))
            .collect(),
    )
}

fn parse_grid(size: ArraySize, points: &Json) -> Result<Crossbar, String> {
    let mut grid = Crossbar::new(size);
    for point in points.as_array().ok_or("points must be an array")? {
        let pair = point.as_array().ok_or("point must be a [row, col] pair")?;
        if pair.len() != 2 {
            return Err("point must be a [row, col] pair".into());
        }
        let r = parse_usize(&pair[0], "point row")?;
        let c = parse_usize(&pair[1], "point col")?;
        if r >= size.rows || c >= size.cols {
            return Err(format!("point ({r}, {c}) outside {size}"));
        }
        grid.set(r, c, true);
    }
    Ok(grid)
}

/// The structural wire form of a [`Realization`].
pub fn realization_to_json(realization: &Realization) -> Json {
    match realization {
        Realization::Diode(array) => object(vec![
            ("tech", Json::Str("diode".into())),
            ("rows", Json::from(array.size().rows)),
            ("cols", Json::from(array.size().cols)),
            ("num_vars", Json::from(array.num_vars())),
            (
                "literals",
                Json::Array(
                    array
                        .column_literals()
                        .iter()
                        .map(|&l| Json::Str(literal_to_str(l)))
                        .collect(),
                ),
            ),
            ("points", points_to_json(array.grid())),
        ]),
        Realization::Fet(array) => object(vec![
            ("tech", Json::Str("fet".into())),
            ("rows", Json::from(array.size().rows)),
            ("cols", Json::from(array.size().cols)),
            ("num_vars", Json::from(array.num_vars())),
            ("n_columns", Json::from(array.n_columns())),
            (
                "literals",
                Json::Array(
                    array
                        .row_literals()
                        .iter()
                        .map(|&l| Json::Str(literal_to_str(l)))
                        .collect(),
                ),
            ),
            ("points", points_to_json(array.grid())),
        ]),
        Realization::Lattice(lattice) => object(vec![
            ("tech", Json::Str("lattice".into())),
            ("num_vars", Json::from(lattice.num_vars())),
            (
                "sites",
                Json::Array(
                    (0..lattice.rows())
                        .map(|r| {
                            Json::Array(
                                (0..lattice.cols())
                                    .map(|c| site_to_json(lattice.site(r, c)))
                                    .collect(),
                            )
                        })
                        .collect(),
                ),
            ),
        ]),
        Realization::Bdd(xbar) => object(vec![
            ("tech", Json::Str("bdd".into())),
            ("num_vars", Json::from(xbar.num_vars())),
            (
                "outputs",
                Json::Array(
                    xbar.functions()
                        .iter()
                        .map(|t| Json::Array(t.words().iter().map(|&w| hex64(w)).collect()))
                        .collect(),
                ),
            ),
        ]),
    }
}

/// Rebuilds a [`Realization`] from its structural wire form through the
/// checked constructors.
pub fn realization_from_json(v: &Json) -> Result<Realization, String> {
    let literals = |v: &Json| -> Result<Vec<Literal>, String> {
        field(v, "literals")?
            .as_array()
            .ok_or("literals must be an array")?
            .iter()
            .map(parse_literal)
            .collect()
    };
    match field(v, "tech")?.as_str() {
        Some("diode") => {
            let size = ArraySize::new(
                parse_usize(field(v, "rows")?, "rows")?,
                parse_usize(field(v, "cols")?, "cols")?,
            );
            let grid = parse_grid(size, field(v, "points")?)?;
            let num_vars = parse_usize(field(v, "num_vars")?, "num_vars")?;
            Ok(Realization::Diode(DiodeArray::from_parts(
                grid,
                literals(v)?,
                num_vars,
            )?))
        }
        Some("fet") => {
            let size = ArraySize::new(
                parse_usize(field(v, "rows")?, "rows")?,
                parse_usize(field(v, "cols")?, "cols")?,
            );
            let grid = parse_grid(size, field(v, "points")?)?;
            let n_columns = parse_usize(field(v, "n_columns")?, "n_columns")?;
            let num_vars = parse_usize(field(v, "num_vars")?, "num_vars")?;
            Ok(Realization::Fet(FetArray::from_parts(
                grid,
                literals(v)?,
                n_columns,
                num_vars,
            )?))
        }
        Some("lattice") => {
            let num_vars = parse_usize(field(v, "num_vars")?, "num_vars")?;
            let rows: Vec<Vec<Site>> = field(v, "sites")?
                .as_array()
                .ok_or("sites must be an array")?
                .iter()
                .map(|row| {
                    row.as_array()
                        .ok_or_else(|| "site row must be an array".to_string())?
                        .iter()
                        .map(parse_site)
                        .collect()
                })
                .collect::<Result<_, String>>()?;
            Ok(Realization::Lattice(Lattice::from_rows(num_vars, rows)?))
        }
        Some("bdd") => {
            let num_vars = parse_usize(field(v, "num_vars")?, "num_vars")?;
            // Bound the rebuild cost: a record past this arity could not
            // have come from the service (and would decode into an
            // exponential allocation).
            if num_vars > 20 {
                return Err(format!("bdd record arity {num_vars} too large"));
            }
            let wl = word_len(num_vars);
            let outputs: Vec<TruthTable> = field(v, "outputs")?
                .as_array()
                .ok_or("outputs must be an array")?
                .iter()
                .map(|words| -> Result<TruthTable, String> {
                    let words: Vec<u64> = words
                        .as_array()
                        .ok_or("output words must be an array")?
                        .iter()
                        .map(parse_hex64)
                        .collect::<Result<_, String>>()?;
                    if words.len() != wl {
                        return Err(format!(
                            "output needs {wl} words for {num_vars} variables, got {}",
                            words.len()
                        ));
                    }
                    Ok(TruthTable::from_fn(num_vars, |m| {
                        (words[(m / 64) as usize] >> (m % 64)) & 1 == 1
                    }))
                })
                .collect::<Result<_, String>>()?;
            // The compiler is deterministic in the output set, so the
            // rebuilt crossbar is bit-identical to the stored one.
            let xbar = nanoxbar_bddsynth::compile_multi(&outputs).map_err(|e| e.to_string())?;
            Ok(Realization::Bdd(xbar))
        }
        other => Err(format!("unknown realization technology {other:?}")),
    }
}

fn cover_to_json(cover: &Cover) -> Json {
    object(vec![
        ("num_vars", Json::from(cover.num_vars())),
        (
            "cubes",
            Json::Array(
                cover
                    .cubes()
                    .iter()
                    .map(|cube| Json::Array(vec![hex64(cube.pos_mask()), hex64(cube.neg_mask())]))
                    .collect(),
            ),
        ),
    ])
}

fn cover_from_json(v: &Json) -> Result<Cover, String> {
    let num_vars = parse_usize(field(v, "num_vars")?, "num_vars")?;
    let cubes: Vec<Cube> = field(v, "cubes")?
        .as_array()
        .ok_or("cubes must be an array")?
        .iter()
        .map(|pair| {
            let masks = pair.as_array().ok_or("cube must be a [pos, neg] pair")?;
            if masks.len() != 2 {
                return Err("cube must be a [pos, neg] pair".into());
            }
            Cube::from_masks(num_vars, parse_hex64(&masks[0])?, parse_hex64(&masks[1])?)
                .map_err(|e| e.to_string())
        })
        .collect::<Result<_, String>>()?;
    Cover::from_cubes(num_vars, cubes).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------
// Cache records
// ---------------------------------------------------------------------

/// The wire form of a [`CacheKey`] — shared by the cache log and the
/// peer-fill protocol, so a fill request names exactly the entry a log
/// record would store.
pub(crate) fn key_to_json(key: &CacheKey) -> Json {
    object(vec![
        ("num_vars", Json::from(key.num_vars())),
        (
            "words",
            Json::Array(key.words().iter().map(|&w| hex64(w)).collect()),
        ),
        ("strategy", Json::Str(key.strategy().into())),
        (
            "minimize",
            Json::Str(minimize_to_str(key.minimize()).into()),
        ),
    ])
}

/// Rebuilds a [`CacheKey`] from its wire form.
pub(crate) fn key_from_json(key: &Json) -> Result<CacheKey, String> {
    let words: Vec<u64> = field(key, "words")?
        .as_array()
        .ok_or("words must be an array")?
        .iter()
        .map(parse_hex64)
        .collect::<Result<_, String>>()?;
    Ok(CacheKey::from_parts(
        parse_usize(field(key, "num_vars")?, "num_vars")?,
        words,
        field(key, "strategy")?
            .as_str()
            .ok_or("strategy must be a string")?
            .to_string(),
        parse_minimize_mode(field(key, "minimize")?)?,
    ))
}

/// Encodes one result-cache entry as a log payload.
pub fn encode_cache_record(key: &CacheKey, value: &CachedSynthesis) -> Vec<u8> {
    let mut members = vec![
        ("v", Json::Int(RECORD_VERSION)),
        ("key", key_to_json(key)),
        ("realization", realization_to_json(&value.realization)),
    ];
    if let Some(cover) = &value.cover {
        members.push(("cover", cover_to_json(cover)));
    }
    object(members).encode().into_bytes()
}

/// Decodes one result-cache log payload.
///
/// # Errors
///
/// A message for malformed, version-skewed, or structurally invalid
/// payloads (the caller counts these and drops the record).
pub fn decode_cache_record(payload: &[u8]) -> Result<(CacheKey, CachedSynthesis), String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    if field(&json, "v")?.as_i64() != Some(RECORD_VERSION) {
        return Err("unsupported cache record version".into());
    }
    let key = key_from_json(field(&json, "key")?)?;
    let realization = Arc::new(realization_from_json(field(&json, "realization")?)?);
    let cover = match json.get("cover") {
        None => None,
        Some(v) => Some(Arc::new(cover_from_json(v)?)),
    };
    Ok((key, CachedSynthesis { realization, cover }))
}

// ---------------------------------------------------------------------
// Session records
// ---------------------------------------------------------------------

fn defects_to_json(defects: &[Defect]) -> Json {
    Json::Array(
        defects
            .iter()
            .map(|&(r, c, health)| {
                Json::Array(vec![
                    Json::from(r),
                    Json::from(c),
                    Json::Str(health_to_str(health).into()),
                ])
            })
            .collect(),
    )
}

fn parse_defects(v: &Json) -> Result<Vec<Defect>, String> {
    v.as_array()
        .ok_or("known_bad must be an array")?
        .iter()
        .map(|triple| {
            let triple = triple.as_array().ok_or("defect must be a triple")?;
            if triple.len() != 3 {
                return Err("defect must be a [row, col, kind] triple".into());
            }
            Ok((
                parse_usize(&triple[0], "defect row")?,
                parse_usize(&triple[1], "defect col")?,
                parse_health(&triple[2])?,
            ))
        })
        .collect()
}

fn snapshot_to_json(snapshot: &MapperSnapshot) -> Json {
    let mut members = vec![
        (
            "rng",
            Json::Array(snapshot.rng.iter().map(|&w| hex64(w)).collect()),
        ),
        ("known_bad", defects_to_json(&snapshot.known_bad)),
        ("attempts", Json::from(snapshot.stats.attempts)),
        ("bist_runs", Json::from(snapshot.stats.bist_runs)),
        ("bisd_runs", Json::from(snapshot.stats.bisd_runs)),
        ("success", Json::Bool(snapshot.stats.success)),
        ("rounds", Json::from(snapshot.rounds)),
        ("done", Json::Bool(snapshot.done)),
    ];
    if let Some(mapping) = &snapshot.mapping {
        members.push((
            "mapping",
            Json::Array(mapping.iter().map(|&r| Json::from(r)).collect()),
        ));
    }
    object(members)
}

fn snapshot_from_json(v: &Json) -> Result<MapperSnapshot, String> {
    let rng_words: Vec<u64> = field(v, "rng")?
        .as_array()
        .ok_or("rng must be an array")?
        .iter()
        .map(parse_hex64)
        .collect::<Result<_, String>>()?;
    let rng: [u64; 4] = rng_words
        .try_into()
        .map_err(|_| "rng must hold four words".to_string())?;
    let mapping = match v.get("mapping") {
        None => None,
        Some(rows) => Some(
            rows.as_array()
                .ok_or("mapping must be an array")?
                .iter()
                .map(|r| parse_usize(r, "mapping row"))
                .collect::<Result<Vec<usize>, String>>()?,
        ),
    };
    Ok(MapperSnapshot {
        rng,
        known_bad: parse_defects(field(v, "known_bad")?)?,
        stats: nanoxbar_engine::BismStats {
            attempts: parse_u64(field(v, "attempts")?, "attempts")?,
            bist_runs: parse_u64(field(v, "bist_runs")?, "bist_runs")?,
            bisd_runs: parse_u64(field(v, "bisd_runs")?, "bisd_runs")?,
            success: field(v, "success")?
                .as_bool()
                .ok_or("success must be a boolean")?,
        },
        rounds: parse_u64(field(v, "rounds")?, "rounds")?,
        done: field(v, "done")?
            .as_bool()
            .ok_or("done must be a boolean")?,
        mapping,
    })
}

/// One decoded session-log payload: an upsert or a tombstone. Replay
/// folds the log down to the **last record per id**.
pub enum SessionRecord {
    /// The session's latest checkpoint.
    Put {
        /// Session id.
        id: String,
        /// Minimise mode of the session's engine.
        minimize: MinimizeMode,
        /// The job spec (JSON object form) the session was created from.
        spec: Json,
        /// The round-boundary mapper checkpoint, if one was taken.
        snapshot: Option<MapperSnapshot>,
    },
    /// The session completed or expired; forget it.
    Drop {
        /// Session id.
        id: String,
    },
}

/// Encodes a session checkpoint as a log payload.
pub fn encode_session_record(
    id: &str,
    minimize: MinimizeMode,
    spec: &Json,
    snapshot: Option<&MapperSnapshot>,
) -> Vec<u8> {
    let mut members = vec![
        ("v", Json::Int(RECORD_VERSION)),
        ("id", Json::Str(id.into())),
        ("minimize", Json::Str(minimize_to_str(minimize).into())),
        ("spec", spec.clone()),
    ];
    if let Some(snapshot) = snapshot {
        members.push(("snapshot", snapshot_to_json(snapshot)));
    }
    object(members).encode().into_bytes()
}

/// Encodes a session tombstone as a log payload.
pub fn encode_session_drop(id: &str) -> Vec<u8> {
    object(vec![
        ("v", Json::Int(RECORD_VERSION)),
        ("id", Json::Str(id.into())),
        ("drop", Json::Bool(true)),
    ])
    .encode()
    .into_bytes()
}

/// Decodes one session-log payload.
///
/// # Errors
///
/// A message for malformed or version-skewed payloads.
pub fn decode_session_record(payload: &[u8]) -> Result<SessionRecord, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "payload is not UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| e.to_string())?;
    if field(&json, "v")?.as_i64() != Some(RECORD_VERSION) {
        return Err("unsupported session record version".into());
    }
    let id = field(&json, "id")?
        .as_str()
        .ok_or("id must be a string")?
        .to_string();
    if json.get("drop").and_then(Json::as_bool) == Some(true) {
        return Ok(SessionRecord::Drop { id });
    }
    let snapshot = match json.get("snapshot") {
        None => None,
        Some(v) => Some(snapshot_from_json(v)?),
    };
    Ok(SessionRecord::Put {
        id,
        minimize: parse_minimize_mode(field(&json, "minimize")?)?,
        spec: field(&json, "spec")?.clone(),
        snapshot,
    })
}

// ---------------------------------------------------------------------
// Boot-time replay accounting
// ---------------------------------------------------------------------

/// What boot-time replay recovered, reported in `/healthz` and kept for
/// the lifetime of the [`Service`](crate::Service).
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryInfo {
    /// Cache records replayed into the result cache.
    pub cache_records_replayed: u64,
    /// Raw session records replayed (before last-per-id folding).
    pub session_records_replayed: u64,
    /// Live sessions materialised after folding.
    pub sessions_recovered: u64,
    /// Torn/corrupt tail bytes truncated across both logs.
    pub bytes_truncated: u64,
    /// CRC-valid records whose payload failed to decode (skipped).
    pub decode_errors: u64,
    /// Cache-log generation (bumped by each compaction).
    pub cache_generation: u32,
    /// Session-log generation.
    pub session_generation: u32,
}

// ---------------------------------------------------------------------
// The background persister
// ---------------------------------------------------------------------

/// A command for the persister thread.
pub(crate) enum PersistCmd {
    /// Append one cache record.
    AppendCache(Vec<u8>),
    /// Append one session record.
    AppendSession(Vec<u8>),
    /// Sync both logs, then acknowledge.
    Flush(SyncSender<()>),
    /// Final sync, acknowledge, and exit.
    Shutdown(SyncSender<()>),
}

/// Handle on the background flusher thread. Appends are enqueued (never
/// block on disk); the thread batches whatever accumulated within one
/// flush interval and pays **one sync per batch**. [`StatePersister::flush`]
/// is the synchronous barrier tests and shutdown use.
pub(crate) struct StatePersister {
    tx: Sender<PersistCmd>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
    metrics: Arc<Metrics>,
}

impl StatePersister {
    /// Enqueues one session record.
    pub fn append_session(&self, payload: Vec<u8>) {
        Metrics::bump(&self.metrics.persist_enqueued);
        let _ = self.tx.send(PersistCmd::AppendSession(payload));
    }

    /// A sender for the cache insert listener (which must not borrow
    /// `self`).
    pub fn sender(&self) -> Sender<PersistCmd> {
        self.tx.clone()
    }

    /// Synchronous barrier: everything enqueued before this call is on
    /// disk (or counted as a flush error) when it returns.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel(1);
        if self.tx.send(PersistCmd::Flush(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }

    /// Final flush and thread join; idempotent.
    pub fn shutdown(&self) {
        let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel(1);
        if self.tx.send(PersistCmd::Shutdown(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
        if let Some(thread) = self.thread.lock().expect("persister lock").take() {
            let _ = thread.join();
        }
    }
}

/// One log under the persister's management.
struct ManagedLog {
    name: &'static str,
    writer: LogWriter,
    /// Records currently in the log file (replayed + appended).
    records: u64,
    /// Appends are refused after an unrecoverable write failure.
    disabled: bool,
}

impl ManagedLog {
    fn append(&mut self, payload: &[u8], metrics: &Metrics) -> bool {
        if self.disabled {
            Metrics::bump(&metrics.persist_flush_errors);
            return false;
        }
        match self.writer.append(payload) {
            Ok(()) => {
                self.records += 1;
                Metrics::bump(&metrics.persist_records_appended);
                true
            }
            Err(_) => {
                Metrics::bump(&metrics.persist_flush_errors);
                false
            }
        }
    }

    fn sync(&mut self, metrics: &Metrics) {
        if !self.disabled && self.writer.sync().is_err() {
            Metrics::bump(&metrics.persist_flush_errors);
        }
    }

    /// Rewrites the log from `payloads` (live state only), bumping the
    /// generation. Also the recovery path after a poisoned writer: the
    /// rewrite starts a fresh file, so one bad write does not end
    /// persistence for the process.
    fn rewrite(&mut self, vfs: &dyn Vfs, payloads: &[Vec<u8>], metrics: &Metrics) {
        match rewrite_log(vfs, self.name, self.writer.generation(), payloads) {
            Ok(writer) => {
                self.writer = writer;
                self.records = payloads.len() as u64;
                self.disabled = false;
                Metrics::bump(&metrics.persist_compactions);
            }
            Err(_) => {
                Metrics::bump(&metrics.persist_flush_errors);
                self.disabled = true;
            }
        }
    }

    fn wants_compaction(&self, live: u64) -> bool {
        self.records > live.saturating_mul(2) + COMPACT_SLACK
    }
}

/// Everything the persister thread owns.
pub(crate) struct PersisterState {
    pub vfs: Arc<dyn Vfs>,
    pub cache_writer: LogWriter,
    pub session_writer: LogWriter,
    pub cache_records: u64,
    pub session_records: u64,
    pub cache: Option<Arc<ResultCache>>,
    pub sessions: Arc<SessionTable>,
}

/// Spawns the background flusher thread.
pub(crate) fn spawn_persister(
    state: PersisterState,
    metrics: Arc<Metrics>,
    flush_interval: Duration,
) -> StatePersister {
    let (tx, rx) = std::sync::mpsc::channel();
    let thread_metrics = metrics.clone();
    let thread = std::thread::Builder::new()
        .name("nanoxbar-persist".into())
        .spawn(move || persister_loop(state, rx, &thread_metrics, flush_interval))
        .expect("spawn persister thread");
    StatePersister {
        tx,
        thread: Mutex::new(Some(thread)),
        metrics,
    }
}

fn persister_loop(
    state: PersisterState,
    rx: Receiver<PersistCmd>,
    metrics: &Metrics,
    flush_interval: Duration,
) {
    let mut cache_log = ManagedLog {
        name: CACHE_LOG,
        writer: state.cache_writer,
        records: state.cache_records,
        disabled: false,
    };
    let mut session_log = ManagedLog {
        name: SESSION_LOG,
        writer: state.session_writer,
        records: state.session_records,
        disabled: false,
    };
    let mut shutdown_ack = None;
    'serve: loop {
        let first = match rx.recv_timeout(flush_interval) {
            Ok(cmd) => Some(cmd),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => None,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break 'serve,
        };
        let mut batch: Vec<PersistCmd> = first.into_iter().collect();
        while batch.len() < 1024 {
            match rx.try_recv() {
                Ok(cmd) => batch.push(cmd),
                Err(_) => break,
            }
        }

        let mut cache_failed = false;
        let mut session_failed = false;
        let mut drained = 0u64;
        let mut acks: Vec<SyncSender<()>> = Vec::new();
        for cmd in batch {
            match cmd {
                PersistCmd::AppendCache(payload) => {
                    cache_failed |= !cache_log.append(&payload, metrics);
                    drained += 1;
                }
                PersistCmd::AppendSession(payload) => {
                    session_failed |= !session_log.append(&payload, metrics);
                    drained += 1;
                }
                PersistCmd::Flush(ack) => acks.push(ack),
                PersistCmd::Shutdown(ack) => {
                    shutdown_ack = Some(ack);
                }
            }
        }
        cache_log.sync(metrics);
        session_log.sync(metrics);
        Metrics::add(&metrics.persist_drained, drained);

        // A failed append leaves the writer poisoned (a torn frame may be
        // on disk); rebuild the log from live state instead of giving up.
        if cache_failed {
            if let Some(cache) = &state.cache {
                let payloads: Vec<Vec<u8>> = cache
                    .snapshot()
                    .iter()
                    .map(|(k, v)| encode_cache_record(k, v))
                    .collect();
                cache_log.rewrite(&*state.vfs, &payloads, metrics);
            }
        }
        if session_failed {
            let payloads = state.sessions.compaction_payloads();
            session_log.rewrite(&*state.vfs, &payloads, metrics);
        }

        // Routine compaction: drop dead weight once it dwarfs live state.
        if let Some(cache) = &state.cache {
            if cache_log.wants_compaction(cache.len() as u64) {
                let payloads: Vec<Vec<u8>> = cache
                    .snapshot()
                    .iter()
                    .map(|(k, v)| encode_cache_record(k, v))
                    .collect();
                cache_log.rewrite(&*state.vfs, &payloads, metrics);
            }
        }
        if session_log.wants_compaction(state.sessions.len() as u64) {
            let payloads = state.sessions.compaction_payloads();
            session_log.rewrite(&*state.vfs, &payloads, metrics);
        }

        for ack in acks {
            let _ = ack.send(());
        }
        if let Some(ack) = shutdown_ack.take() {
            let _ = ack.send(());
            break 'serve;
        }
    }
    // Channel closed or shutdown: one last sync so nothing enqueued is
    // left only in the page cache.
    let mut drained = 0u64;
    while let Ok(cmd) = rx.try_recv() {
        match cmd {
            PersistCmd::AppendCache(payload) => {
                cache_log.append(&payload, metrics);
                drained += 1;
            }
            PersistCmd::AppendSession(payload) => {
                session_log.append(&payload, metrics);
                drained += 1;
            }
            PersistCmd::Flush(ack) | PersistCmd::Shutdown(ack) => {
                let _ = ack.send(());
            }
        }
    }
    Metrics::add(&metrics.persist_drained, drained);
    cache_log.sync(metrics);
    session_log.sync(metrics);
}

/// The two opened logs plus replay accounting, ready for preloading.
pub(crate) struct OpenedState {
    pub cache_records: Vec<Vec<u8>>,
    pub session_records: Vec<Vec<u8>>,
    pub cache_writer: LogWriter,
    pub session_writer: LogWriter,
    pub bytes_truncated: u64,
    pub cache_generation: u32,
    pub session_generation: u32,
}

/// Opens (replaying and tail-truncating) both logs on `vfs`.
pub(crate) fn open_state(vfs: &dyn Vfs) -> io::Result<OpenedState> {
    let cache = open_log(vfs, CACHE_LOG)?;
    let sessions = open_log(vfs, SESSION_LOG)?;
    Ok(OpenedState {
        cache_records: cache.records.into_iter().map(|(_, p)| p).collect(),
        session_records: sessions.records.into_iter().map(|(_, p)| p).collect(),
        cache_writer: cache.writer,
        session_writer: sessions.writer,
        bytes_truncated: cache.stats.bytes_truncated + sessions.stats.bytes_truncated,
        cache_generation: cache.stats.generation,
        session_generation: sessions.stats.generation,
    })
}

/// The current flush lag: records enqueued but not yet written out.
pub(crate) fn flush_lag(metrics: &Metrics) -> u64 {
    metrics
        .persist_enqueued
        .load(Ordering::Relaxed)
        .saturating_sub(metrics.persist_drained.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_engine::{Engine, Job, Strategy};
    use nanoxbar_logic::parse_function;

    fn synthesis_of(expr: &str, strategy: Strategy) -> (CacheKey, CachedSynthesis) {
        let f = parse_function(expr).expect("parse");
        let engine = Engine::builder()
            .cache_capacity(1 << 20)
            .build()
            .expect("engine");
        engine
            .run(&Job::synthesize(f.clone()).with_strategy(strategy))
            .expect("synthesis");
        let cache = engine.cache().expect("cache on").clone();
        let snapshot = cache.snapshot();
        assert_eq!(snapshot.len(), 1);
        snapshot.into_iter().next().expect("one entry")
    }

    #[test]
    fn cache_records_roundtrip_debug_identically_for_every_technology() {
        for strategy in [
            Strategy::Diode,
            Strategy::Fet,
            Strategy::DualLattice,
            Strategy::OptimalLattice,
            Strategy::Bdd,
        ] {
            let (key, value) = synthesis_of("x0 x1 + !x0 !x1 + x2 !x0", strategy);
            let payload = encode_cache_record(&key, &value);
            let (key2, value2) = decode_cache_record(&payload).expect("decode");
            assert_eq!(key, key2, "{strategy:?} key");
            // Debug-identical realizations fingerprint identically, which
            // is what makes warm-started bodies byte-identical.
            assert_eq!(
                format!("{:?}", value.realization),
                format!("{:?}", value2.realization),
                "{strategy:?} realization"
            );
            assert_eq!(
                format!("{:?}", value.cover),
                format!("{:?}", value2.cover),
                "{strategy:?} cover"
            );
        }
    }

    #[test]
    fn multi_output_bdd_records_roundtrip() {
        let outputs = vec![
            parse_function("x0 x1 + x2").expect("parse"),
            parse_function("x0 ^ x1 ^ x2").expect("parse"),
        ];
        let engine = Engine::builder()
            .cache_capacity(1 << 20)
            .build()
            .expect("engine");
        engine
            .run(&Job::synthesize_multi(outputs.clone()).verified(true))
            .expect("multi synthesis");
        let (key, value) = engine
            .cache()
            .expect("cache on")
            .snapshot()
            .into_iter()
            .next()
            .expect("one entry");
        assert_eq!(key.strategy(), "bdd-multi");
        let payload = encode_cache_record(&key, &value);
        let (key2, value2) = decode_cache_record(&payload).expect("decode");
        assert_eq!(key, key2);
        assert_eq!(
            format!("{:?}", value.realization),
            format!("{:?}", value2.realization),
            "recompiled crossbar must be bit-identical"
        );
        assert!(value2.realization.computes_outputs(&outputs));
    }

    #[test]
    fn tampered_records_decode_to_errors_not_panics() {
        let (key, value) = synthesis_of("x0 x1", Strategy::Diode);
        let good = String::from_utf8(encode_cache_record(&key, &value)).expect("utf8");
        for bad in [
            "".to_string(),
            "{}".to_string(),
            "{\"v\":99}".to_string(),
            good.replace("\"strategy\"", "\"strategem\""),
            // A point far outside the grid must be rejected, not set.
            good.replace("\"points\":[[0,0]", "\"points\":[[900,900]"),
        ] {
            assert!(decode_cache_record(bad.as_bytes()).is_err(), "{bad}");
        }
    }

    #[test]
    fn session_records_roundtrip_including_tombstones() {
        let snapshot = MapperSnapshot {
            rng: [u64::MAX, 1, 0x0123_4567_89AB_CDEF, 42],
            known_bad: vec![
                (0, 3, CrosspointHealth::StuckOpen),
                (2, 2, CrosspointHealth::StuckClosed),
            ],
            stats: nanoxbar_engine::BismStats {
                attempts: 7,
                bist_runs: 7,
                bisd_runs: 3,
                success: false,
            },
            rounds: 2,
            done: false,
            mapping: None,
        };
        let spec = Json::parse(
            "{\"expr\":\"x0 x1\",\"chip\":{\"rows\":8,\"cols\":8,\"seed\":1},\"map\":{}}",
        )
        .expect("spec json");
        let payload = encode_session_record("diag-1", MinimizeMode::Exact, &spec, Some(&snapshot));
        match decode_session_record(&payload).expect("decode") {
            SessionRecord::Put {
                id,
                minimize,
                spec: spec2,
                snapshot: Some(snap2),
            } => {
                assert_eq!(id, "diag-1");
                assert_eq!(minimize, MinimizeMode::Exact);
                assert_eq!(spec2, spec);
                assert_eq!(snap2, snapshot);
            }
            _ => panic!("expected a Put with a snapshot"),
        }
        match decode_session_record(&encode_session_drop("diag-1")).expect("decode") {
            SessionRecord::Drop { id } => assert_eq!(id, "diag-1"),
            _ => panic!("expected a Drop"),
        }
    }

    #[test]
    fn hex_codec_is_full_range() {
        for v in [0, 1, u64::MAX, 0x8000_0000_0000_0000, i64::MAX as u64 + 1] {
            assert_eq!(parse_hex64(&hex64(v)).expect("roundtrip"), v);
        }
    }
}
