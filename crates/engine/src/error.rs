//! The unified error hierarchy for the request path.
//!
//! Every failure an [`crate::Engine`] job can hit — parse errors, constant
//! functions on two-terminal technologies, SAT budget exhaustion, fabric
//! exhaustion in the defect-unaware flow, per-job limits, and panics
//! captured by batch isolation — is one [`Error`] variant, so batch callers
//! match on a single type instead of crate-local errors and panics.

use std::time::Duration;

use nanoxbar_lattice::synth::SynthError;
use nanoxbar_logic::LogicError;

use crate::flow::FlowError;

/// Any failure of an engine job.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A Boolean-function construction or parse failure.
    Logic(LogicError),
    /// The defect-unaware flow failed (fabric exhaustion, constants).
    Flow(FlowError),
    /// Lattice synthesis failed (bad covers, SAT budget, deadline).
    Synth(SynthError),
    /// The target is constant and the chosen backend needs products.
    ConstantFunction {
        /// Arity of the constant target.
        num_vars: usize,
    },
    /// No registered backend carries the requested name.
    UnknownStrategy {
        /// The name that failed to resolve.
        name: String,
    },
    /// An analog MVM job carries an invalid spec (bad dimensions,
    /// non-finite values, defect probabilities summing past 1, …).
    /// Raised *before* the chip draw, so a bad spec is a typed error —
    /// never a tripped `assert!` on a worker thread.
    MvmSpec {
        /// What is wrong with it.
        message: String,
    },
    /// A multi-output job ([`crate::Job::synthesize_multi`]) carries an
    /// invalid output set (empty, mixed arities) or asks for something
    /// only single-output jobs support (chip flows, BISM mapping, a
    /// non-BDD strategy).
    MultiSpec {
        /// What is wrong with it.
        message: String,
    },
    /// A BISM mapping job carries an invalid [`crate::MapConfig`].
    MapConfig {
        /// What is wrong with it.
        message: String,
    },
    /// A BISM mapping job targets a chip too small for the application.
    MapFabric {
        /// Rows × literal columns the application needs.
        needed: (usize, usize),
        /// Rows × columns the chip has.
        fabric: (usize, usize),
    },
    /// The realisation exceeded the engine's area limit.
    AreaLimit {
        /// Crosspoints of the realisation.
        area: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The job ran past the engine's per-job time limit.
    TimeLimit {
        /// The configured ceiling.
        limit: Duration,
    },
    /// The synthesised realisation failed exhaustive verification against
    /// its target — a backend bug surfaced as data, not a panic.
    Verification {
        /// Name of the backend that produced the bad realisation.
        strategy: String,
    },
    /// A panic escaped the job and was captured by batch isolation.
    Panicked {
        /// The panic payload, rendered to a string.
        message: String,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Logic(e) => write!(f, "logic error: {e}"),
            Error::Flow(e) => write!(f, "flow error: {e}"),
            Error::Synth(e) => write!(f, "synthesis error: {e}"),
            Error::ConstantFunction { num_vars } => {
                write!(f, "constant {num_vars}-variable function needs no crossbar")
            }
            Error::UnknownStrategy { name } => write!(f, "unknown synthesis strategy {name:?}"),
            Error::MvmSpec { message } => write!(f, "bad mvm spec: {message}"),
            Error::MultiSpec { message } => write!(f, "bad multi-output job: {message}"),
            Error::MapConfig { message } => write!(f, "bad map configuration: {message}"),
            Error::MapFabric { needed, fabric } => write!(
                f,
                "application needs {}x{} but the chip is {}x{}",
                needed.0, needed.1, fabric.0, fabric.1
            ),
            Error::AreaLimit { area, limit } => {
                write!(f, "realisation area {area} exceeds the limit {limit}")
            }
            Error::TimeLimit { limit } => {
                write!(f, "job exceeded the time limit of {limit:?}")
            }
            Error::Verification { strategy } => {
                write!(f, "strategy {strategy:?} produced a wrong realisation")
            }
            Error::Panicked { message } => write!(f, "job panicked: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Logic(e) => Some(e),
            Error::Flow(e) => Some(e),
            Error::Synth(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogicError> for Error {
    fn from(e: LogicError) -> Self {
        Error::Logic(e)
    }
}

impl From<FlowError> for Error {
    fn from(e: FlowError) -> Self {
        Error::Flow(e)
    }
}

impl From<SynthError> for Error {
    fn from(e: SynthError) -> Self {
        Error::Synth(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_every_variant() {
        let cases: Vec<Error> = vec![
            LogicError::VarOutOfRange {
                var: 7,
                num_vars: 3,
            }
            .into(),
            FlowError::ConstantFunction.into(),
            SynthError::SatBudgetExceeded { sat_calls: 4 }.into(),
            Error::ConstantFunction { num_vars: 2 },
            Error::UnknownStrategy {
                name: "quantum".into(),
            },
            Error::MvmSpec {
                message: "trials must be in 1..=4096, got 0".into(),
            },
            Error::MultiSpec {
                message: "multi-output jobs need at least one output".into(),
            },
            Error::MapConfig {
                message: "speculation width must be >= 1".into(),
            },
            Error::MapFabric {
                needed: (3, 6),
                fabric: (4, 4),
            },
            Error::AreaLimit { area: 30, limit: 9 },
            Error::TimeLimit {
                limit: Duration::from_millis(5),
            },
            Error::Verification {
                strategy: "diode".into(),
            },
            Error::Panicked {
                message: "boom".into(),
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync_and_sourced() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<Error>();
        let e: Error = FlowError::ConstantFunction.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
