//! Transient-fault tolerance (paper Sec. IV: "fault tolerance to ensure
//! the lifetime reliability (for errors during normal operation)"; the
//! companion study is ref \[15\], Tunali–Altun TCAD 2016).
//!
//! During operation, nano-crosspoints suffer *transient* upsets: a device
//! momentarily drops out (or a parasitic one conducts) for a single
//! evaluation. The classic architectural remedy the paper's programme
//! exploits — abundant reprogrammable resources — is modular redundancy:
//! fabricate R copies of each product row and vote. This module provides a
//! per-evaluation transient-upset simulator for diode arrays and an R-way
//! modular-redundant wrapper, so the reliability-vs-redundancy trade-off
//! can be measured (experiment E12).

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use nanoxbar_crossbar::DiodeArray;

/// Per-evaluation transient-upset model for a diode array.
///
/// Each programmed device independently fails open with probability
/// `p_drop`, and each unprogrammed crosspoint of a *used* row conducts
/// with probability `p_ghost`, for the duration of one evaluation.
#[derive(Clone, Debug)]
pub struct TransientModel {
    /// Probability a programmed device momentarily opens.
    pub p_drop: f64,
    /// Probability an unprogrammed crosspoint momentarily conducts.
    pub p_ghost: f64,
}

impl TransientModel {
    /// A symmetric model with equal drop/ghost rates.
    pub fn symmetric(p: f64) -> Self {
        TransientModel {
            p_drop: p,
            p_ghost: p,
        }
    }

    /// Evaluates `array` on minterm `m` with transient upsets drawn from
    /// `rng`.
    pub fn eval(&self, array: &DiodeArray, m: u64, rng: &mut ChaCha8Rng) -> bool {
        let mut line = Vec::new();
        self.eval_with_line(array, m, rng, &mut line)
    }

    /// [`TransientModel::eval`] with a caller-supplied scratch buffer for
    /// the per-column literal values, so batched sweeps (Monte-Carlo
    /// trials, redundant replicas) evaluate each literal once per input
    /// instead of once per (row, column) visit and perform no per-call
    /// allocation.
    pub fn eval_with_line(
        &self,
        array: &DiodeArray,
        m: u64,
        rng: &mut ChaCha8Rng,
        line: &mut Vec<bool>,
    ) -> bool {
        let out_col = array.output_column();
        let grid = array.grid();
        line.clear();
        line.extend(array.column_literals().iter().map(|lit| lit.eval(m)));
        (0..grid.size().rows).any(|r| {
            if !grid.is_programmed(r, out_col) {
                return false;
            }
            line.iter().enumerate().all(|(c, &value)| {
                let programmed = grid.is_programmed(r, c);
                let present = if programmed {
                    rng.gen::<f64>() >= self.p_drop
                } else {
                    rng.gen::<f64>() < self.p_ghost
                };
                !present || value
            })
        })
    }
}

/// An R-way modular-redundant diode realisation with a majority voter.
///
/// # Examples
///
/// ```
/// use nanoxbar_crossbar::DiodeArray;
/// use nanoxbar_logic::{isop_cover, parse_function};
/// use nanoxbar_reliability::transient::{RedundantArray, TransientModel};
///
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let array = DiodeArray::synthesize(&isop_cover(&f));
/// let tmr = RedundantArray::new(array, 3);
/// let (raw, voted) = tmr.error_rates(&TransientModel::symmetric(0.02), 2000, 7);
/// assert!(voted <= raw);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct RedundantArray {
    array: DiodeArray,
    replicas: usize,
}

impl RedundantArray {
    /// Wraps an array with `replicas` copies (odd; 1 = simplex).
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero or even (majority needs an odd count).
    pub fn new(array: DiodeArray, replicas: usize) -> Self {
        assert!(
            replicas % 2 == 1,
            "majority voting needs an odd replica count"
        );
        RedundantArray { array, replicas }
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// Total crosspoint cost (voter not counted; it is shared chip
    /// infrastructure in this model).
    pub fn area(&self) -> usize {
        self.array.size().area() * self.replicas
    }

    /// One voted evaluation under transient upsets (each replica draws
    /// independent upsets).
    pub fn eval(&self, model: &TransientModel, m: u64, rng: &mut ChaCha8Rng) -> bool {
        let mut line = Vec::new();
        self.eval_with_line(model, m, rng, &mut line)
    }

    /// [`RedundantArray::eval`] with a shared scratch buffer (the literal
    /// values are recomputed per replica only because each replica's RNG
    /// draws must stay independent; the buffer allocation is shared).
    fn eval_with_line(
        &self,
        model: &TransientModel,
        m: u64,
        rng: &mut ChaCha8Rng,
        line: &mut Vec<bool>,
    ) -> bool {
        let votes = (0..self.replicas)
            .filter(|_| model.eval_with_line(&self.array, m, rng, line))
            .count();
        2 * votes > self.replicas
    }

    /// Monte-Carlo output error rates over `trials` random input/upset
    /// draws: `(simplex, voted)`.
    ///
    /// The golden responses are computed once for the whole sweep (one
    /// word-parallel truth-table build) and the per-trial line buffer is
    /// reused, so the loop's cost is purely the RNG draws the upset model
    /// requires.
    pub fn error_rates(&self, model: &TransientModel, trials: u64, seed: u64) -> (f64, f64) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let golden = self.array.to_truth_table();
        let inputs = 1u64 << self.array.num_vars();
        let mut raw_errors = 0u64;
        let mut voted_errors = 0u64;
        let mut line = Vec::new();
        for _ in 0..trials {
            let m = rng.gen_range(0..inputs);
            let expected = golden.value(m);
            if model.eval_with_line(&self.array, m, &mut rng, &mut line) != expected {
                raw_errors += 1;
            }
            if self.eval_with_line(model, m, &mut rng, &mut line) != expected {
                voted_errors += 1;
            }
        }
        (
            raw_errors as f64 / trials as f64,
            voted_errors as f64 / trials as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_logic::{isop_cover, parse_function};

    fn xnor_array() -> DiodeArray {
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        DiodeArray::synthesize(&isop_cover(&f))
    }

    #[test]
    fn zero_upset_rate_is_error_free() {
        let tmr = RedundantArray::new(xnor_array(), 3);
        let (raw, voted) = tmr.error_rates(&TransientModel::symmetric(0.0), 500, 1);
        assert_eq!(raw, 0.0);
        assert_eq!(voted, 0.0);
    }

    #[test]
    fn voting_reduces_error_rate() {
        let tmr = RedundantArray::new(xnor_array(), 3);
        let (raw, voted) = tmr.error_rates(&TransientModel::symmetric(0.05), 20_000, 42);
        assert!(raw > 0.0, "upsets must be visible at 5%");
        assert!(
            voted < raw * 0.8,
            "triple redundancy should cut errors well below simplex: {voted} vs {raw}"
        );
    }

    #[test]
    fn more_replicas_help_more() {
        let a3 = RedundantArray::new(xnor_array(), 3);
        let a5 = RedundantArray::new(xnor_array(), 5);
        let model = TransientModel::symmetric(0.08);
        let (_, v3) = a3.error_rates(&model, 30_000, 9);
        let (_, v5) = a5.error_rates(&model, 30_000, 9);
        assert!(v5 < v3, "5-way {v5} vs 3-way {v3}");
        assert!(a5.area() > a3.area());
    }

    #[test]
    fn determinism_by_seed() {
        let tmr = RedundantArray::new(xnor_array(), 3);
        let model = TransientModel::symmetric(0.03);
        assert_eq!(
            tmr.error_rates(&model, 1000, 5),
            tmr.error_rates(&model, 1000, 5)
        );
    }

    #[test]
    #[should_panic(expected = "odd replica count")]
    fn even_replicas_rejected() {
        let _ = RedundantArray::new(xnor_array(), 2);
    }

    #[test]
    fn asymmetric_models_behave() {
        // Only ghost conduction: a one-product AND can only gain spurious
        // blocking literals... ghosts on unprogrammed columns block rows
        // whose literal is 0, pulling true outputs low.
        let f = parse_function("x0").unwrap();
        let array = DiodeArray::synthesize(&isop_cover(&f));
        let model = TransientModel {
            p_drop: 0.0,
            p_ghost: 0.5,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        // m = 1 (x0 true): output may flip low due to ghosts; never panics.
        for _ in 0..100 {
            let _ = model.eval(&array, 1, &mut rng);
        }
    }
}
