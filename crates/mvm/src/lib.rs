//! Analog in-memory-compute MVM on the nano-crossbar fabric.
//!
//! The paper treats the crossbar as a digital logic fabric, but the same
//! physical array is an analog matrix-vector multiplier: currents obey
//! `I = G · V`, so programming a conductance matrix G and driving input
//! voltages V computes a matrix-vector product in one step — the workload
//! family behind neuromorphic and in-memory-computing accelerators.
//!
//! This crate models that workload on top of the workspace's existing
//! physics:
//!
//! - **Program step** (chip-independent): signed weights map to
//!   *differential pairs* of conductance targets, `W = G⁺ − G⁻`, each
//!   plane bounded by `[g_min, g_max]` ([`program`]). The physical array
//!   interleaves the planes column-wise: device `(r, 2c)` is the positive
//!   half of weight `(r, c)`, device `(r, 2c+1)` the negative half.
//! - **Chip step** (chip-specific): a [`ConductanceMap`] applies the
//!   fabrication reality to the targets — stuck-open crosspoints fall to
//!   `g_min`, stuck-closed rise to `g_max`
//!   (`nanoxbar_reliability::defect::DefectMap`), static device-to-device
//!   variation scales conductance by the reciprocal of a seeded
//!   `ResistanceField`, per-programming Gaussian noise (Box–Muller, the
//!   vendored `rand::NormalRng`) perturbs every target, and a first-order
//!   wire-resistance model attenuates devices by their IR drop:
//!   `g_eff = g / (1 + g·R_wire·(r + c + 2))`.
//! - **Execute step**: the f32 kernels in [`kernel`] — a strictly scalar
//!   reference, a 4-row lane-unrolled variant, and a row-chunked parallel
//!   variant with fixed chunk boundaries and in-order reduction, all
//!   **bit-identical** for every `NANOXBAR_THREADS`.
//!
//! [`execute`] runs a whole [`MvmSpec`] — Monte-Carlo over programming
//! trials with per-trial seeds derived from the chip seed — and returns a
//! deterministic [`MvmOutcome`]. Everything is seeded: the same spec
//! yields the same outcome bit-for-bit on every run, thread count, and
//! replica.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use nanoxbar_crossbar::ArraySize;
use nanoxbar_reliability::defect::{CrosspointHealth, DefectMap};
use nanoxbar_reliability::variation::ResistanceField;
use rand::{NormalRng, SeedableRng};
use rand_chacha::ChaCha8Rng;

pub mod kernel;

pub use kernel::{mvm_parallel, mvm_scalar, mvm_unrolled, PAR_CHUNK_ROWS};

/// Largest accepted weight matrix dimension (rows or cols).
pub const MAX_DIM: usize = 4096;

/// Largest accepted weight matrix area (`rows * cols`).
pub const MAX_AREA: usize = 1 << 20;

/// Largest accepted Monte-Carlo trial count.
pub const MAX_TRIALS: u32 = 4096;

/// Physical conductance bounds and the first-order wire model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConductanceParams {
    /// Lowest programmable device conductance (siemens).
    pub g_min: f32,
    /// Highest programmable device conductance (siemens).
    pub g_max: f32,
    /// Per-segment wire resistance (ohms): device `(r, c)` of the
    /// physical array sees `wire_resistance * (r + c + 2)` of series
    /// wire, the first-order IR-drop path length from the drivers.
    pub wire_resistance: f32,
}

impl Default for ConductanceParams {
    /// Memristor-flavoured defaults: a 100× on/off window (1 µS – 100 µS)
    /// and 1 Ω of wire per crossbar segment.
    fn default() -> Self {
        ConductanceParams {
            g_min: 1e-6,
            g_max: 1e-4,
            wire_resistance: 1.0,
        }
    }
}

/// One analog MVM workload: a signed weight matrix, an input vector, the
/// chip the weights are programmed onto, and the Monte-Carlo trial count.
#[derive(Clone, Debug, PartialEq)]
pub struct MvmSpec {
    /// Weight matrix rows (output vector length).
    pub rows: usize,
    /// Weight matrix columns (input vector length).
    pub cols: usize,
    /// Row-major signed weights; values are clipped to `[-1, 1]` by the
    /// program step.
    pub weights: Vec<f32>,
    /// The input (voltage) vector, length `cols`.
    pub input: Vec<f32>,
    /// Seed of the chip draw: defects and the static variation field are
    /// deterministic in `(dimensions, chip_seed)`.
    pub chip_seed: u64,
    /// Stuck-open probability per physical device.
    pub p_open: f64,
    /// Stuck-closed probability per physical device.
    pub p_closed: f64,
    /// Relative sigma of both the static device variation and the
    /// per-trial Gaussian programming noise.
    pub noise_sigma: f32,
    /// Monte-Carlo programming trials (>= 1). Trial `t` re-programs the
    /// same chip with a fresh noise draw seeded from `(chip_seed, t)`.
    pub trials: u32,
}

impl MvmSpec {
    /// Validates every field, returning the first problem as a message.
    ///
    /// This is the check the engine and the service boundary both apply,
    /// so a bad spec becomes a typed error (HTTP 400) instead of tripping
    /// an `assert!` — e.g. the one in `DefectMap::random_uniform` — on a
    /// worker thread.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_program()?;
        if self.input.len() != self.cols {
            return Err(format!(
                "input must hold cols = {} values, got {}",
                self.cols,
                self.input.len()
            ));
        }
        if self.input.iter().any(|x| !x.is_finite()) {
            return Err("input must be finite".into());
        }
        for (name, p) in [("p_open", self.p_open), ("p_closed", self.p_closed)] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        if self.p_open + self.p_closed > 1.0 {
            return Err(format!(
                "p_open + p_closed must not exceed 1, got {}",
                self.p_open + self.p_closed
            ));
        }
        if !self.noise_sigma.is_finite() || self.noise_sigma < 0.0 {
            return Err(format!(
                "noise_sigma must be finite and >= 0, got {}",
                self.noise_sigma
            ));
        }
        if self.trials == 0 || self.trials > MAX_TRIALS {
            return Err(format!(
                "trials must be in 1..={MAX_TRIALS}, got {}",
                self.trials
            ));
        }
        Ok(())
    }

    /// Validates just the chip-independent fields the [`program`] step
    /// reads: dimensions and the weight matrix. This subset is exactly
    /// what batch dedupe keys on, so every job of one dedupe group
    /// agrees on its outcome — one slot's bad chip parameters (checked
    /// per slot by [`MvmSpec::validate`]) can never fail a partner that
    /// merely shares its weights.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid field.
    pub fn validate_program(&self) -> Result<(), String> {
        if self.rows == 0 || self.rows > MAX_DIM {
            return Err(format!("rows must be in 1..={MAX_DIM}, got {}", self.rows));
        }
        if self.cols == 0 || self.cols > MAX_DIM {
            return Err(format!("cols must be in 1..={MAX_DIM}, got {}", self.cols));
        }
        if self.rows * self.cols > MAX_AREA {
            return Err(format!(
                "weight matrix area {} exceeds the limit {MAX_AREA}",
                self.rows * self.cols
            ));
        }
        if self.weights.len() != self.rows * self.cols {
            return Err(format!(
                "weights must hold rows*cols = {} values, got {}",
                self.rows * self.cols,
                self.weights.len()
            ));
        }
        if self.weights.iter().any(|w| !w.is_finite()) {
            return Err("weights must be finite".into());
        }
        Ok(())
    }

    /// Dimensions of the physical device array: one differential pair —
    /// two devices — per weight.
    pub fn physical_size(&self) -> ArraySize {
        ArraySize::new(self.rows, 2 * self.cols)
    }
}

/// The chip-independent program step's output: per-device conductance
/// targets for the two differential planes.
#[derive(Clone, Debug, PartialEq)]
pub struct ProgramTargets {
    /// Weight matrix rows.
    pub rows: usize,
    /// Weight matrix columns (half the physical columns).
    pub cols: usize,
    /// Positive-plane targets, row-major `rows x cols`.
    pub g_pos: Vec<f32>,
    /// Negative-plane targets, row-major `rows x cols`.
    pub g_neg: Vec<f32>,
    /// The bounds the targets were programmed against.
    pub params: ConductanceParams,
}

/// Maps signed weights onto differential conductance targets: weight `w`
/// (clipped to `[-1, 1]`) becomes `g⁺ = g_min + (g_max − g_min)·max(w, 0)`
/// and `g⁻ = g_min + (g_max − g_min)·max(−w, 0)`, so `g⁺ − g⁻` spans the
/// full signed range while each physical device stays inside its bounds.
/// Pure and chip-independent — identical weights always program identical
/// targets, which is what lets the engine cache/dedupe this step.
///
/// # Panics
///
/// Panics if `weights.len() != rows * cols`.
pub fn program(
    weights: &[f32],
    rows: usize,
    cols: usize,
    params: ConductanceParams,
) -> ProgramTargets {
    assert_eq!(weights.len(), rows * cols, "weights must be rows x cols");
    let span = params.g_max - params.g_min;
    let mut g_pos = Vec::with_capacity(weights.len());
    let mut g_neg = Vec::with_capacity(weights.len());
    for &w in weights {
        let w = w.clamp(-1.0, 1.0);
        g_pos.push(params.g_min + span * w.max(0.0));
        g_neg.push(params.g_min + span * (-w).max(0.0));
    }
    ProgramTargets {
        rows,
        cols,
        g_pos,
        g_neg,
        params,
    }
}

/// The effective signed weight matrix of one programmed chip: targets
/// pushed through defects, static device variation, one programming-noise
/// draw, and the first-order IR-drop model, then normalised back to
/// weight units (`(g⁺_eff − g⁻_eff) / (g_max − g_min)`).
#[derive(Clone, Debug, PartialEq)]
pub struct ConductanceMap {
    rows: usize,
    cols: usize,
    eff: Vec<f32>,
    defect_count: usize,
}

impl ConductanceMap {
    /// Programs one chip: applies Gaussian programming noise (seeded by
    /// `noise_seed`, drawn in physical row-major order), overrides stuck
    /// devices (open → `g_min`, closed → `g_max`), scales by the static
    /// variation field (conductance is the reciprocal of the field's
    /// resistance factor), clips to `[g_min, g_max]`, and attenuates by
    /// the device's series wire resistance.
    ///
    /// # Panics
    ///
    /// Panics if `defects` or `field` are not `rows x 2·cols` — the
    /// physical array of the differential pairs.
    pub fn build(
        targets: &ProgramTargets,
        defects: &DefectMap,
        field: &ResistanceField,
        noise_sigma: f32,
        noise_seed: u64,
    ) -> ConductanceMap {
        let (rows, cols) = (targets.rows, targets.cols);
        let physical = ArraySize::new(rows, 2 * cols);
        assert_eq!(defects.size(), physical, "defect map must be rows x 2*cols");
        assert_eq!(field.size(), physical, "field must be rows x 2*cols");
        let p = targets.params;
        let span = p.g_max - p.g_min;
        let mut rng = ChaCha8Rng::seed_from_u64(noise_seed);
        let mut device = |target: f32, r: usize, c_phys: usize| -> f32 {
            // Programming noise perturbs the achieved conductance; a
            // stuck device ignores programming entirely.
            let noisy = target * (1.0 + noise_sigma * rng.gen_normal_f32());
            let programmed = match defects.health(r, c_phys) {
                CrosspointHealth::Good => noisy,
                CrosspointHealth::StuckOpen => p.g_min,
                CrosspointHealth::StuckClosed => p.g_max,
            };
            // Static device-to-device variation: the field's resistance
            // factor (nominal 1.0) divides the conductance.
            let varied = programmed / field.at(r, c_phys) as f32;
            let g = varied.clamp(p.g_min, p.g_max);
            // First-order IR drop: the farther from the drivers, the
            // more series wire resistance eats into the device current.
            let wire = p.wire_resistance * (r + c_phys + 2) as f32;
            g / (1.0 + g * wire)
        };
        let mut eff = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let pos = device(targets.g_pos[r * cols + c], r, 2 * c);
                let neg = device(targets.g_neg[r * cols + c], r, 2 * c + 1);
                eff.push((pos - neg) / span);
            }
        }
        ConductanceMap {
            rows,
            cols,
            eff,
            defect_count: defects.defect_count(),
        }
    }

    /// Weight matrix rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Weight matrix columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The normalised effective signed weights, row-major.
    pub fn effective_weights(&self) -> &[f32] {
        &self.eff
    }

    /// Defective devices in the physical array behind this map.
    pub fn defect_count(&self) -> usize {
        self.defect_count
    }

    /// One analog MVM on this chip (the parallel kernel — bit-identical
    /// to [`mvm_scalar`] on the effective weights for every thread
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != cols`.
    pub fn mvm(&self, input: &[f32]) -> Vec<f32> {
        kernel::mvm_parallel(&self.eff, self.rows, self.cols, input)
    }
}

/// The deterministic outcome of one [`MvmSpec`] run.
#[derive(Clone, Debug, PartialEq)]
pub struct MvmOutcome {
    /// Weight matrix rows (output length).
    pub rows: usize,
    /// Weight matrix columns (input length).
    pub cols: usize,
    /// Monte-Carlo trials that ran.
    pub trials: u32,
    /// Defective devices in the physical `rows x 2*cols` array.
    pub defects: usize,
    /// The ideal product `W·x` of the clipped weights — what a perfect
    /// chip would compute.
    pub ideal: Vec<f32>,
    /// The analog output of trial 0.
    pub output: Vec<f32>,
    /// Mean over trials of the RMS error against `ideal`.
    pub rms_error_mean: f64,
    /// Worst trial's RMS error against `ideal`.
    pub rms_error_max: f64,
}

/// Mixes the chip seed and a trial index into a programming-noise seed
/// (SplitMix64 finalizer, so adjacent trials decorrelate).
fn trial_seed(chip_seed: u64, trial: u32) -> u64 {
    let mut z = chip_seed
        .wrapping_add(0x9E3779B97F4A7C15)
        .wrapping_add(u64::from(trial).wrapping_mul(0xBF58476D1CE4E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Runs one validated spec against pre-programmed targets: draws the chip
/// (defects + static variation) from `spec.chip_seed`, then Monte-Carlo
/// re-programs it `spec.trials` times with per-trial noise seeds and
/// multiplies each programmed chip by the input.
///
/// Deterministic: the same `(spec, targets)` yields the same
/// [`MvmOutcome`] bit-for-bit on every run and thread count.
///
/// # Errors
///
/// The [`MvmSpec::validate`] message when the spec is invalid.
pub fn execute(spec: &MvmSpec, targets: &ProgramTargets) -> Result<MvmOutcome, String> {
    spec.validate()?;
    assert_eq!(
        (targets.rows, targets.cols),
        (spec.rows, spec.cols),
        "targets must be programmed from this spec's weights"
    );
    let physical = spec.physical_size();
    let defects = DefectMap::random_uniform(physical, spec.p_open, spec.p_closed, spec.chip_seed);
    let field = ResistanceField::random(
        physical,
        f64::from(spec.noise_sigma),
        spec.chip_seed ^ 0xA076_1D64_78BD_642F,
    );

    let clipped: Vec<f32> = spec.weights.iter().map(|w| w.clamp(-1.0, 1.0)).collect();
    let ideal = kernel::mvm_parallel(&clipped, spec.rows, spec.cols, &spec.input);

    let mut output = Vec::new();
    let mut defect_count = 0;
    let mut rms_sum = 0.0f64;
    let mut rms_max = 0.0f64;
    for trial in 0..spec.trials {
        let map = ConductanceMap::build(
            targets,
            &defects,
            &field,
            spec.noise_sigma,
            trial_seed(spec.chip_seed, trial),
        );
        let y = map.mvm(&spec.input);
        let mse = y
            .iter()
            .zip(&ideal)
            .map(|(a, b)| {
                let d = f64::from(*a) - f64::from(*b);
                d * d
            })
            .sum::<f64>()
            / spec.rows as f64;
        let rms = mse.sqrt();
        rms_sum += rms;
        rms_max = rms_max.max(rms);
        if trial == 0 {
            output = y;
            defect_count = map.defect_count();
        }
    }
    Ok(MvmOutcome {
        rows: spec.rows,
        cols: spec.cols,
        trials: spec.trials,
        defects: defect_count,
        ideal,
        output,
        rms_error_mean: rms_sum / f64::from(spec.trials),
        rms_error_max: rms_max,
    })
}

/// Deterministic test/bench workload: weights and an input drawn
/// uniformly from `[-1, 1)`, seeded — the same generator the CLI and the
/// bench binaries use, so their runs are reproducible end to end.
pub fn random_problem(rows: usize, cols: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    use rand::Rng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let weights = (0..rows * cols)
        .map(|_| rng.gen::<f32>() * 2.0 - 1.0)
        .collect();
    let input = (0..cols).map(|_| rng.gen::<f32>() * 2.0 - 1.0).collect();
    (weights, input)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(rows: usize, cols: usize) -> MvmSpec {
        let (weights, input) = random_problem(rows, cols, 7);
        MvmSpec {
            rows,
            cols,
            weights,
            input,
            chip_seed: 11,
            p_open: 0.02,
            p_closed: 0.01,
            noise_sigma: 0.05,
            trials: 4,
        }
    }

    #[test]
    fn program_targets_stay_in_bounds_and_cover_the_sign() {
        let p = ConductanceParams::default();
        let t = program(&[1.0, -1.0, 0.0, 0.25], 2, 2, p);
        for (gp, gn) in t.g_pos.iter().zip(&t.g_neg) {
            assert!((p.g_min..=p.g_max).contains(gp));
            assert!((p.g_min..=p.g_max).contains(gn));
        }
        // w = 1: positive plane saturated, negative at the floor.
        assert_eq!(t.g_pos[0], p.g_max);
        assert_eq!(t.g_neg[0], p.g_min);
        // w = -1: mirrored.
        assert_eq!(t.g_pos[1], p.g_min);
        assert_eq!(t.g_neg[1], p.g_max);
        // w = 0: both at the floor, differential weight exactly 0.
        assert_eq!(t.g_pos[2], t.g_neg[2]);
    }

    #[test]
    fn execute_is_deterministic_and_noise_grows_the_error() {
        let s = spec(40, 24);
        let targets = program(&s.weights, s.rows, s.cols, ConductanceParams::default());
        let a = execute(&s, &targets).unwrap();
        let b = execute(&s, &targets).unwrap();
        assert_eq!(a, b, "same spec, same outcome, bit for bit");
        assert_eq!(a.ideal.len(), 40);
        assert_eq!(a.output.len(), 40);
        assert!(a.rms_error_max >= a.rms_error_mean);

        let noisier = MvmSpec {
            noise_sigma: 0.4,
            ..s.clone()
        };
        let c = execute(&noisier, &targets).unwrap();
        assert!(
            c.rms_error_mean > a.rms_error_mean,
            "more noise must mean more error: {} vs {}",
            c.rms_error_mean,
            a.rms_error_mean
        );
    }

    #[test]
    fn a_clean_quiet_chip_tracks_the_ideal_product() {
        let mut s = spec(32, 32);
        s.p_open = 0.0;
        s.p_closed = 0.0;
        s.noise_sigma = 0.0;
        s.trials = 1;
        let targets = program(&s.weights, s.rows, s.cols, ConductanceParams::default());
        let out = execute(&s, &targets).unwrap();
        assert_eq!(out.defects, 0);
        // Only the wire model separates output from ideal; with ~µS
        // conductances over a few ohms of wire the attenuation is tiny.
        assert!(
            out.rms_error_mean < 0.05,
            "clean chip error {}",
            out.rms_error_mean
        );
    }

    #[test]
    fn defects_move_the_output() {
        let mut s = spec(32, 32);
        s.noise_sigma = 0.0;
        s.trials = 1;
        let targets = program(&s.weights, s.rows, s.cols, ConductanceParams::default());
        let mut clean = s.clone();
        clean.p_open = 0.0;
        clean.p_closed = 0.0;
        let mut dirty = s.clone();
        dirty.p_open = 0.2;
        dirty.p_closed = 0.1;
        let clean = execute(&clean, &targets).unwrap();
        let dirty = execute(&dirty, &targets).unwrap();
        assert!(dirty.defects > 0);
        assert!(dirty.rms_error_mean > clean.rms_error_mean);
    }

    #[test]
    fn validate_rejects_every_bad_field() {
        let good = spec(4, 4);
        assert!(good.validate().is_ok());
        let cases: Vec<(&str, MvmSpec)> = vec![
            (
                "rows",
                MvmSpec {
                    rows: 0,
                    ..good.clone()
                },
            ),
            (
                "cols",
                MvmSpec {
                    cols: MAX_DIM + 1,
                    ..good.clone()
                },
            ),
            (
                "weights must hold",
                MvmSpec {
                    weights: vec![0.0; 3],
                    ..good.clone()
                },
            ),
            (
                "input must hold",
                MvmSpec {
                    input: vec![0.0; 3],
                    ..good.clone()
                },
            ),
            (
                "weights must be finite",
                MvmSpec {
                    weights: vec![f32::NAN; 16],
                    ..good.clone()
                },
            ),
            (
                "input must be finite",
                MvmSpec {
                    input: vec![f32::INFINITY; 4],
                    ..good.clone()
                },
            ),
            (
                "p_open",
                MvmSpec {
                    p_open: -0.1,
                    ..good.clone()
                },
            ),
            (
                "p_closed",
                MvmSpec {
                    p_closed: f64::NAN,
                    ..good.clone()
                },
            ),
            (
                "p_open + p_closed",
                MvmSpec {
                    p_open: 0.7,
                    p_closed: 0.5,
                    ..good.clone()
                },
            ),
            (
                "noise_sigma",
                MvmSpec {
                    noise_sigma: f32::NAN,
                    ..good.clone()
                },
            ),
            (
                "trials",
                MvmSpec {
                    trials: 0,
                    ..good.clone()
                },
            ),
            (
                "trials",
                MvmSpec {
                    trials: MAX_TRIALS + 1,
                    ..good
                },
            ),
        ];
        for (needle, bad) in cases {
            let message = bad.validate().unwrap_err();
            assert!(
                message.contains(needle),
                "expected {needle:?} in {message:?}"
            );
        }
    }
}
