//! Criterion microbenchmarks: the CDCL solver substrate (backs E10's
//! SAT-optimal lattice search).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nanoxbar_logic::suite::SplitMix64;
use nanoxbar_sat::{Cnf, Lit, Solver, Var};

/// Random 3-SAT at the given clause/variable ratio.
fn random_3sat(num_vars: usize, ratio: f64, seed: u64) -> Cnf {
    let mut rng = SplitMix64::new(seed);
    let mut cnf = Cnf::new();
    let vars: Vec<Var> = cnf.fresh_vars(num_vars);
    let clauses = (num_vars as f64 * ratio) as usize;
    for _ in 0..clauses {
        let mut clause = Vec::with_capacity(3);
        for _ in 0..3 {
            let v = vars[rng.below(num_vars as u64) as usize];
            clause.push(Lit::new(v, rng.chance(0.5)));
        }
        cnf.add_clause(clause);
    }
    cnf
}

/// Pigeonhole principle PHP(n+1, n) — UNSAT, exercises clause learning.
#[allow(clippy::needless_range_loop)] // pairwise indexing is clearest here
fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let mut cnf = Cnf::new();
    let x: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| cnf.fresh_var().positive()).collect())
        .collect();
    for p in &x {
        cnf.add_clause(p.iter().copied());
    }
    for h in 0..holes {
        for p1 in 0..pigeons {
            for p2 in (p1 + 1)..pigeons {
                cnf.add_clause([!x[p1][h], !x[p2][h]]);
            }
        }
    }
    cnf
}

fn solver_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat");
    for n in [30usize, 60] {
        let cnf = random_3sat(n, 3.5, 0x5A7 + n as u64);
        group.bench_with_input(BenchmarkId::new("random-3sat", n), &cnf, |b, cnf| {
            b.iter(|| Solver::from_cnf(std::hint::black_box(cnf)).solve().is_sat())
        });
    }
    for holes in [5usize, 7] {
        let cnf = pigeonhole(holes);
        group.bench_with_input(BenchmarkId::new("pigeonhole", holes), &cnf, |b, cnf| {
            b.iter(|| {
                assert!(!Solver::from_cnf(std::hint::black_box(cnf)).solve().is_sat());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = solver_benches
}
criterion_main!(benches);
