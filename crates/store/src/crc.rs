//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Every record frame in the [`crate::log`] format carries a CRC over
//! its header-plus-payload bytes; a mismatch marks the byte where
//! recovery truncates. The polynomial choice only has to be
//! self-consistent — logs are read back by the process family that
//! wrote them, never by foreign tools.

/// The reflected IEEE polynomial used by zip, Ethernet, PNG.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// A streaming CRC-32 accumulator.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ b as u32) & 0xFF;
            self.state = (self.state >> 8) ^ TABLE[idx as usize];
        }
    }

    /// Finishes and returns the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn zeros_checksum_nonzero() {
        // The log's truncate-on-corruption policy relies on a run of
        // zero bytes (preallocated / torn tail) failing its CRC check.
        assert_ne!(crc32(&[0u8; 8]), 0);
        assert_ne!(crc32(&[0u8; 128]), 0);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"some bytes fed in two slices";
        let mut crc = Crc32::new();
        crc.update(&data[..9]);
        crc.update(&data[9..]);
        assert_eq!(crc.finish(), crc32(data));
    }
}
