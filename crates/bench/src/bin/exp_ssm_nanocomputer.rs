//! E11 — Sec. V future work: arithmetic elements, memory elements, and a
//! synchronous state machine (SSM) on nano-crossbars.
//!
//! The paper's items 3 and 4 — "implementing arithmetic and memory
//! elements" and "realizing a nano-crossbar based synchronous state
//! machine" — realised on all three technologies: ripple-carry adders
//! (area per width), registers, and a running mod-2ⁿ counter SSM.

use nanoxbar_bench::banner;
use nanoxbar_core::arith::AdderDesign;
use nanoxbar_core::memory::Register;
use nanoxbar_core::report::Table;
use nanoxbar_core::ssm::Ssm;
use nanoxbar_core::Technology;

fn main() {
    banner("E11 / Sec. V", "arithmetic + memory elements and the SSM");

    println!("ripple-carry adders (crosspoint area per technology):\n");
    let mut table = Table::new(&["bits", "diode", "fet", "four-terminal"]);
    for bits in [2usize, 3, 4] {
        let areas: Vec<String> = Technology::ALL
            .iter()
            .map(|&t| {
                let adder = AdderDesign::synthesize(bits, t);
                // Functional spot check through the hardware models.
                assert_eq!(adder.add(1, (1 << bits) - 1), 1 + ((1 << bits) - 1) as u64);
                adder.total_area().to_string()
            })
            .collect();
        table.row_owned(vec![
            bits.to_string(),
            areas[0].clone(),
            areas[1].clone(),
            areas[2].clone(),
        ]);
    }
    println!("{}", table.render());

    println!("registers (n-bit, gated D-latches):\n");
    let mut table = Table::new(&["bits", "diode", "fet", "four-terminal"]);
    for bits in [4usize, 8] {
        let areas: Vec<String> = Technology::ALL
            .iter()
            .map(|&t| Register::synthesize(bits, t).area().to_string())
            .collect();
        table.row_owned(vec![
            bits.to_string(),
            areas[0].clone(),
            areas[1].clone(),
            areas[2].clone(),
        ]);
    }
    println!("{}", table.render());

    println!("mod-2^n counter SSM (next-state + outputs + state register):\n");
    let mut table = Table::new(&["state bits", "diode", "fet", "four-terminal"]);
    for bits in [2usize, 3, 4] {
        let areas: Vec<String> = Technology::ALL
            .iter()
            .map(|&t| Ssm::counter(bits, t).total_area().to_string())
            .collect();
        table.row_owned(vec![
            bits.to_string(),
            areas[0].clone(),
            areas[1].clone(),
            areas[2].clone(),
        ]);
    }
    println!("{}", table.render());

    // A visible run: 3-bit counter on lattices, 10 enabled steps.
    let mut counter = Ssm::counter(3, Technology::FourTerminal);
    print!("3-bit lattice counter trace:");
    for _ in 0..10 {
        counter.step(1);
        print!(" {}", counter.state());
    }
    println!();
    assert_eq!(counter.state(), 2, "10 steps mod 8");

    println!(
        "\npaper Sec. V: arithmetic and memory elements and an SSM are the \
         announced follow-on work packages; this experiment demonstrates \
         them end-to-end on the synthesised crossbar models."
    );
}
