//! Synchronous state machines on crossbars (paper Sec. V, future-work
//! item 4: "realizing a nano-crossbar based synchronous state machine by
//! integrating arithmetic and logic elements").
//!
//! An SSM is next-state logic (crossbar-realised, one array per state bit)
//! plus a state register of crossbar latches. [`Ssm::counter`] builds the
//! canonical demonstrator — a mod-2ⁿ counter with enable.

use nanoxbar_logic::TruthTable;

use crate::memory::Register;
use crate::tech::{synth, Realization, Technology};

/// A crossbar-realised synchronous state machine.
///
/// Input encoding of each next-state function: state bits occupy inputs
/// `0..state_bits`, external inputs follow at `state_bits..`.
#[derive(Clone, Debug)]
pub struct Ssm {
    technology: Technology,
    state_bits: usize,
    input_bits: usize,
    next_state: Vec<Realization>,
    outputs: Vec<Realization>,
    register: Register,
}

impl Ssm {
    /// Builds an SSM from explicit next-state and output functions.
    ///
    /// # Panics
    ///
    /// Panics unless every function has arity `state_bits + input_bits`,
    /// there is one next-state function per state bit, and no function is
    /// constant (constants need no array).
    pub fn new(
        state_bits: usize,
        input_bits: usize,
        next_state_fns: &[TruthTable],
        output_fns: &[TruthTable],
        tech: Technology,
    ) -> Self {
        assert_eq!(
            next_state_fns.len(),
            state_bits,
            "one next-state function per bit"
        );
        let arity = state_bits + input_bits;
        for f in next_state_fns.iter().chain(output_fns) {
            assert_eq!(f.num_vars(), arity, "function arity mismatch");
            assert!(
                !f.is_zero() && !f.is_ones(),
                "constant functions need no array"
            );
        }
        Ssm {
            technology: tech,
            state_bits,
            input_bits,
            next_state: next_state_fns.iter().map(|f| synth(f, tech)).collect(),
            outputs: output_fns.iter().map(|f| synth(f, tech)).collect(),
            register: Register::synthesize(state_bits, tech),
        }
    }

    /// The canonical demonstrator: a mod-2ⁿ up-counter with an enable
    /// input (`input 0`). Output: the terminal-count flag (all state bits
    /// high while enabled).
    ///
    /// # Examples
    ///
    /// ```
    /// use nanoxbar_core::ssm::Ssm;
    /// use nanoxbar_core::Technology;
    ///
    /// let mut counter = Ssm::counter(3, Technology::FourTerminal);
    /// for _ in 0..5 {
    ///     counter.step(1);
    /// }
    /// assert_eq!(counter.state(), 5);
    /// ```
    pub fn counter(bits: usize, tech: Technology) -> Self {
        assert!(bits >= 1, "counter needs at least one bit");
        let arity = bits + 1;
        let enable_bit = bits; // input 0 sits after the state bits
        let next_state_fns: Vec<TruthTable> = (0..bits)
            .map(|b| {
                TruthTable::from_fn(arity, |m| {
                    let state = m & ((1 << bits) - 1);
                    let enable = (m >> enable_bit) & 1 == 1;
                    let next = if enable {
                        (state + 1) & ((1 << bits) - 1)
                    } else {
                        state
                    };
                    (next >> b) & 1 == 1
                })
            })
            .collect();
        let terminal = TruthTable::from_fn(arity, |m| {
            let state = m & ((1 << bits) - 1);
            let enable = (m >> enable_bit) & 1 == 1;
            enable && state == (1 << bits) - 1
        });
        Ssm::new(bits, 1, &next_state_fns, &[terminal], tech)
    }

    /// Current state word.
    pub fn state(&self) -> u64 {
        self.register.value()
    }

    /// Forces the state (reset).
    pub fn reset(&mut self, state: u64) {
        self.register.reset(state);
    }

    /// Number of state bits.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// Technology of all arrays.
    pub fn technology(&self) -> Technology {
        self.technology
    }

    /// One synchronous step: evaluates the next-state and output arrays on
    /// (state, input) and clocks the register. Returns the output word.
    ///
    /// # Panics
    ///
    /// Panics if `input` does not fit in `input_bits`.
    pub fn step(&mut self, input: u64) -> u64 {
        assert!(input < (1 << self.input_bits), "input overflow");
        let m = self.state() | (input << self.state_bits);
        let mut next = 0u64;
        for (b, f) in self.next_state.iter().enumerate() {
            if f.eval(m) {
                next |= 1 << b;
            }
        }
        let mut out = 0u64;
        for (b, f) in self.outputs.iter().enumerate() {
            if f.eval(m) {
                out |= 1 << b;
            }
        }
        self.register.apply(next, true);
        out
    }

    /// Total crosspoint area: next-state + output arrays + state register.
    pub fn total_area(&self) -> usize {
        self.next_state.iter().map(Realization::area).sum::<usize>()
            + self.outputs.iter().map(Realization::area).sum::<usize>()
            + self.register.area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts_and_wraps() {
        for tech in Technology::ALL {
            let mut c = Ssm::counter(2, tech);
            let mut outputs = Vec::new();
            for _ in 0..5 {
                outputs.push(c.step(1));
            }
            assert_eq!(c.state(), 1, "{tech}: 5 steps mod 4");
            // Terminal count fires when stepping *from* state 3.
            assert_eq!(outputs, vec![0, 0, 0, 1, 0], "{tech}");
        }
    }

    #[test]
    fn disabled_counter_holds() {
        let mut c = Ssm::counter(3, Technology::Diode);
        c.step(1);
        c.step(1);
        let s = c.state();
        for _ in 0..4 {
            assert_eq!(c.step(0), 0);
        }
        assert_eq!(c.state(), s);
    }

    #[test]
    fn reset_and_area() {
        let mut c = Ssm::counter(3, Technology::FourTerminal);
        c.reset(6);
        assert_eq!(c.state(), 6);
        c.step(1);
        assert_eq!(c.state(), 7);
        assert!(c.total_area() > 0);
        assert_eq!(c.state_bits(), 3);
    }

    #[test]
    fn counter_area_differs_by_technology() {
        let areas: Vec<usize> = Technology::ALL
            .iter()
            .map(|&t| Ssm::counter(3, t).total_area())
            .collect();
        // The three technologies give genuinely different areas.
        assert!(areas.iter().collect::<std::collections::HashSet<_>>().len() >= 2);
    }

    #[test]
    #[should_panic(expected = "function arity mismatch")]
    fn arity_mismatch_rejected() {
        let f = TruthTable::from_fn(2, |m| m == 1);
        let _ = Ssm::new(2, 1, &[f.clone(), f.clone()], &[], Technology::Diode);
    }
}
