//! Irredundant sum-of-products generation (Minato–Morreale ISOP).
//!
//! [`isop`] computes a prime, irredundant SOP cover of any function between
//! a lower bound `L` and an upper bound `U` (for a completely specified
//! function use `L = U = f`). This is the cover used for both the
//! two-terminal size formulas of the paper's Fig. 3 and the Altun–Riedel
//! lattice construction of Fig. 5, where `f` *and its dual* must both be in
//! irredundant SOP form.

use crate::cover::Cover;
use crate::cube::Cube;

use crate::truth_table::TruthTable;

/// Computes an irredundant SOP cover `C` with `L ⊆ C ⊆ U`.
///
/// The recursion is the classic Minato–Morreale procedure on cofactors: the
/// chosen branch variable splits the interval, the parts that *must* carry a
/// literal are synthesised first, and the remainder is covered without the
/// branch variable.
///
/// # Panics
///
/// Panics if `L` and `U` have different arities or `L ⊄ U`.
///
/// # Examples
///
/// ```
/// use nanoxbar_logic::{isop, parse_function};
///
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let cover = isop(&f, &f);
/// assert_eq!(cover.product_count(), 2);
/// assert!(cover.computes(&f));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn isop(lower: &TruthTable, upper: &TruthTable) -> Cover {
    assert_eq!(
        lower.num_vars(),
        upper.num_vars(),
        "interval arity mismatch"
    );
    assert!(
        lower.implies(upper),
        "invalid interval: L not contained in U"
    );
    let num_vars = lower.num_vars();
    let cubes = isop_rec(lower, upper, num_vars);
    Cover::from_cubes(num_vars, cubes).expect("cubes constructed with cover arity")
}

/// Computes the ISOP cover of a completely specified function.
///
/// ```
/// use nanoxbar_logic::{isop_cover, parse_function};
/// let parity = parse_function("x0 ^ x1 ^ x2")?;
/// assert_eq!(isop_cover(&parity).product_count(), 4);
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn isop_cover(f: &TruthTable) -> Cover {
    isop(f, f)
}

/// Recursive worker: returns cubes covering at least `lower` and at most
/// `upper`. The returned cubes constrain only variables in the interval's
/// support, so coverage checks at the caller are exact.
fn isop_rec(lower: &TruthTable, upper: &TruthTable, num_vars: usize) -> Vec<Cube> {
    if lower.is_zero() {
        return Vec::new();
    }
    if upper.is_ones() {
        return vec![Cube::universe(num_vars)];
    }
    // Branch on the highest variable that still matters for the interval.
    let var = (0..num_vars)
        .rev()
        .find(|&v| !upper.is_independent_of(v) || !lower.is_independent_of(v))
        .expect("non-constant interval must have a support variable");

    let l0 = lower.cofactor(var, false);
    let l1 = lower.cofactor(var, true);
    let u0 = upper.cofactor(var, false);
    let u1 = upper.cofactor(var, true);

    // Minterms that can only be covered with the literal !x (resp. x).
    let need0 = l0.and_not(&u1);
    let need1 = l1.and_not(&u0);

    let c0 = isop_rec(&need0, &u0, num_vars);
    let c1 = isop_rec(&need1, &u1, num_vars);

    // What the sub-covers achieve *before* the branch literal is attached
    // (their cubes never constrain `var` or outer variables).
    let tt_of = |cubes: &[Cube]| {
        TruthTable::from_fn(num_vars, |m| cubes.iter().any(|c| c.contains_minterm(m)))
    };
    let covered0 = tt_of(&c0);
    let covered1 = tt_of(&c1);

    let rest_lower = l0.and_not(&covered0).or(&l1.and_not(&covered1));
    let rest_upper = u0.and(&u1);
    let rest = isop_rec(&rest_lower, &rest_upper, num_vars);

    let mut out = Vec::with_capacity(c0.len() + c1.len() + rest.len());
    out.extend(c0.into_iter().map(|c| c.with_negative(var)));
    out.extend(c1.into_iter().map(|c| c.with_positive(var)));
    out.extend(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth_table::TruthTable;

    /// Checks the three defining ISOP properties: covers the interval, every
    /// cube is an implicant of `upper`, and no cube is redundant.
    fn check_isop(lower: &TruthTable, upper: &TruthTable) -> Cover {
        let cover = isop(lower, upper);
        let tt = cover.to_truth_table();
        assert!(lower.implies(&tt), "cover misses required minterms");
        assert!(tt.implies(upper), "cover exceeds upper bound");
        for (i, c) in cover.cubes().iter().enumerate() {
            assert!(
                c.to_truth_table().implies(upper),
                "cube {i} ({c}) is not an implicant"
            );
            // Irredundancy: dropping any cube must lose a required minterm.
            let rest = TruthTable::from_fn(lower.num_vars(), |m| {
                cover
                    .cubes()
                    .iter()
                    .enumerate()
                    .any(|(j, cj)| j != i && cj.contains_minterm(m))
            });
            assert!(
                !lower.implies(&rest),
                "cube {i} ({c}) is redundant in {cover}"
            );
        }
        cover
    }

    #[test]
    fn constants() {
        let z = TruthTable::zeros(3);
        let o = TruthTable::ones(3);
        assert_eq!(isop_cover(&z).product_count(), 0);
        let one = isop_cover(&o);
        assert_eq!(one.product_count(), 1);
        assert!(one.has_universe_cube());
    }

    #[test]
    fn single_cube_functions_yield_one_product() {
        let f = crate::expr::parse_function("x0 !x2").unwrap();
        let cover = check_isop(&f, &f);
        assert_eq!(cover.product_count(), 1);
        assert_eq!(cover.cubes()[0].literal_count(), 2);
    }

    #[test]
    fn xnor_yields_two_products() {
        let f = crate::expr::parse_function("x0 x1 + !x0 !x1").unwrap();
        let cover = check_isop(&f, &f);
        assert_eq!(cover.product_count(), 2);
    }

    #[test]
    fn parity_yields_exponential_cover() {
        // Parity has no prime implicants larger than minterms: 2^(n-1) products.
        for n in 2..=4 {
            let f = TruthTable::from_fn(n, |m| m.count_ones() % 2 == 1);
            let cover = check_isop(&f, &f);
            assert_eq!(cover.product_count(), 1 << (n - 1));
        }
    }

    #[test]
    fn covers_are_exact_for_specified_functions() {
        // Deterministic pseudo-random sweep.
        let mut state = 0x243F6A8885A308D3u64;
        for n in 1..=6 {
            for _ in 0..40 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let bits = state;
                let f = TruthTable::from_fn(n, |m| (bits >> (m % 64)) & 1 == 1);
                let cover = check_isop(&f, &f);
                assert!(cover.computes(&f));
            }
        }
    }

    #[test]
    fn interval_with_dont_cares_shrinks_cover() {
        // ON = {3}, DC = {1, 2}: a single-literal cube suffices.
        let lower = TruthTable::from_minterms(2, &[3]).unwrap();
        let upper = TruthTable::from_minterms(2, &[1, 2, 3]).unwrap();
        let cover = check_isop(&lower, &upper);
        assert_eq!(cover.product_count(), 1);
        assert!(cover.cubes()[0].literal_count() <= 1);
    }

    #[test]
    #[should_panic(expected = "invalid interval")]
    fn invalid_interval_panics() {
        let lower = TruthTable::ones(2);
        let upper = TruthTable::zeros(2);
        let _ = isop(&lower, &upper);
    }

    #[test]
    fn isop_cubes_are_primes() {
        // Every cube of an ISOP of a completely specified function must be a
        // prime implicant: expanding any literal leaves the ON-set.
        let f = crate::expr::parse_function("x0 x1 + x1 x2 + !x0 !x2").unwrap();
        let cover = check_isop(&f, &f);
        for c in cover.cubes() {
            for lit in c.literals() {
                let bigger = c.without_var(lit.var());
                assert!(
                    !bigger.to_truth_table().implies(&f),
                    "cube {c} is not prime (can drop {lit})"
                );
            }
        }
    }
}
