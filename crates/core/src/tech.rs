//! Technology selection (paper Sec. III) — plain re-exports.
//!
//! The types and the implementation live in `nanoxbar-engine`; synthesis
//! runs through [`nanoxbar_engine::Engine::run`] (or
//! [`nanoxbar_engine::synthesize`] for one-shots). The deprecated
//! `synthesize` shim of the pre-engine API has been removed.

pub use nanoxbar_engine::{Realization, Technology};

use nanoxbar_logic::TruthTable;

/// Crate-internal one-shot synthesis for the nanocomputer elements, which
/// construct provably non-constant functions and keep the historical
/// panic-on-constant contract.
pub(crate) fn synth(f: &TruthTable, tech: Technology) -> Realization {
    nanoxbar_engine::synthesize(f, tech).unwrap_or_else(|e| panic!("synthesize: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_crossbar::ArraySize;
    use nanoxbar_logic::parse_function;

    #[test]
    fn reexports_realise_the_paper_sizes() {
        let f = parse_function("x0 x1 + !x0 !x1").unwrap();
        assert_eq!(synth(&f, Technology::Diode).size(), ArraySize::new(2, 5));
        assert_eq!(synth(&f, Technology::Fet).size(), ArraySize::new(4, 4));
        assert_eq!(
            synth(&f, Technology::FourTerminal).size(),
            ArraySize::new(2, 2)
        );
    }
}
