//! Fault simulation for configured crossbars.
//!
//! The single source of truth for test-mode semantics: rows are wired-AND
//! products over driven literal columns, every row is observable, and a
//! [`FabricFault`] perturbs the electrical behaviour as documented on each
//! variant. BIST coverage (Sec. IV-A) is *proved* against this simulator by
//! exhaustive fault injection.
//!
//! # Word-parallel batch path
//!
//! Exhaustive coverage sweeps ask the same question for every
//! (fault, vector) pair, so the module also provides a bit-sliced engine:
//! [`PackedVectors`] packs up to 64 test vectors into one `u64` per
//! column (bit `j` of `lines[c]` = vector `j`'s value on column `c`), and
//! [`PackedSim`] computes the fault-free ("golden") row responses **once
//! per configuration** as row words in the same layout. A fault is then
//! judged against all packed vectors at once by [`PackedSim::detect_word`],
//! which recomputes only the rows the fault can touch — one or two rows
//! for crosspoint and bridge/open faults — instead of re-simulating the
//! whole array twice per (fault, vector) pair the way the scalar
//! [`detects`] does. The scalar path remains the reference; the property
//! suite in `tests/packed_equivalence.rs` proves both agree.

use nanoxbar_crossbar::Crossbar;

use crate::defect::{CrosspointHealth, DefectMap};
use crate::fault::FabricFault;

/// A test stimulus: the logic value driven on each column.
pub type TestVector = Vec<bool>;

/// Simulates the fault-free row responses of a configuration under a
/// vector.
///
/// # Panics
///
/// Panics if the vector length differs from the column count.
pub fn golden_rows(config: &Crossbar, vector: &TestVector) -> Vec<bool> {
    simulate_rows(config, None, vector)
}

/// Simulates row responses with an optional injected fault.
///
/// # Panics
///
/// Panics if the vector length differs from the column count.
pub fn simulate_rows(
    config: &Crossbar,
    fault: Option<FabricFault>,
    vector: &TestVector,
) -> Vec<bool> {
    let size = config.size();
    assert_eq!(vector.len(), size.cols, "vector arity mismatch");

    // Effective column line values (column bridges and breaks first). The
    // fault-free path — half of every scalar `detects` call — borrows the
    // vector directly instead of cloning it.
    let mut owned: TestVector;
    let line: &[bool] = match fault {
        Some(FabricFault::BridgeCols { col }) => {
            owned = vector.clone();
            let merged = owned[col] && owned[col + 1];
            owned[col] = merged;
            owned[col + 1] = merged;
            &owned
        }
        Some(FabricFault::ColOpen { col }) => {
            // Floating column: devices on it never pull the row down.
            owned = vector.clone();
            owned[col] = true;
            &owned
        }
        _ => vector,
    };

    // Per-row wired-AND with crosspoint-level faults.
    let device_present = |r: usize, c: usize| -> bool {
        let programmed = config.is_programmed(r, c);
        match fault {
            Some(FabricFault::StuckOpen { row, col }) if (row, col) == (r, c) => false,
            Some(FabricFault::StuckClosed { row, col }) if (row, col) == (r, c) => true,
            _ => programmed,
        }
    };
    let device_value = |r: usize, c: usize| -> bool {
        match fault {
            Some(FabricFault::Functional { row, col }) if (row, col) == (r, c) => !line[c],
            _ => line[c],
        }
    };
    let row_product =
        |r: usize| -> bool { (0..size.cols).all(|c| !device_present(r, c) || device_value(r, c)) };

    let mut rows: Vec<bool> = (0..size.rows).map(row_product).collect();

    match fault {
        Some(FabricFault::BridgeRows { row }) => {
            let merged = rows[row] && rows[row + 1];
            rows[row] = merged;
            rows[row + 1] = merged;
        }
        Some(FabricFault::RowOpen { row }) => {
            // Broken observation wire floats high.
            rows[row] = true;
        }
        _ => {}
    }
    rows
}

/// True if `fault` is detected by (`config`, `vector`): some observable row
/// differs from the fault-free response.
///
/// Convenience wrapper that re-simulates the golden response; sweeps that
/// fix the configuration and vector should precompute it once and call
/// [`detects_with_golden`] (or use the word-parallel [`PackedSim`]).
pub fn detects(config: &Crossbar, fault: FabricFault, vector: &TestVector) -> bool {
    detects_with_golden(config, fault, vector, &golden_rows(config, vector))
}

/// [`detects`] with the fault-free response supplied by the caller, so
/// coverage loops simulate each (configuration, vector) golden exactly
/// once instead of once per fault.
///
/// # Panics
///
/// Panics if the vector length differs from the column count (`golden` is
/// trusted; a wrong-length golden merely compares unequal).
pub fn detects_with_golden(
    config: &Crossbar,
    fault: FabricFault,
    vector: &TestVector,
    golden: &[bool],
) -> bool {
    simulate_rows(config, Some(fault), vector) != golden
}

/// Up to 64 test vectors packed column-wise: bit `j` of `lines[c]` is
/// vector `j`'s value on column `c` — the stimulus-side half of the
/// word-parallel fault-simulation path.
#[derive(Clone, Debug)]
pub struct PackedVectors {
    /// Number of packed vectors (1..=64).
    count: usize,
    /// One word per column.
    lines: Vec<u64>,
}

impl PackedVectors {
    /// Packs `vectors` into 64-vector chunks.
    ///
    /// # Panics
    ///
    /// Panics if any vector's length differs from `cols`.
    pub fn pack(vectors: &[TestVector], cols: usize) -> Vec<PackedVectors> {
        vectors
            .chunks(64)
            .map(|chunk| {
                let mut lines = vec![0u64; cols];
                for (j, vector) in chunk.iter().enumerate() {
                    assert_eq!(vector.len(), cols, "vector arity mismatch");
                    for (c, &value) in vector.iter().enumerate() {
                        if value {
                            lines[c] |= 1u64 << j;
                        }
                    }
                }
                PackedVectors {
                    count: chunk.len(),
                    lines,
                }
            })
            .collect()
    }

    /// Number of packed vectors.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Mask with one bit per packed vector.
    pub fn vector_mask(&self) -> u64 {
        if self.count == 64 {
            u64::MAX
        } else {
            (1u64 << self.count) - 1
        }
    }
}

/// Word-parallel fault simulator: one configuration, up to 64 vectors,
/// golden row responses computed once.
///
/// Row `r`'s golden word has bit `j` set when the wired-AND product of
/// row `r` reads 1 under packed vector `j`. [`PackedSim::detect_word`]
/// answers "which vectors detect this fault" in a handful of word
/// operations by recomputing only the rows the fault can perturb.
///
/// # Examples
///
/// ```
/// use nanoxbar_crossbar::{ArraySize, Crossbar};
/// use nanoxbar_reliability::fault::FabricFault;
/// use nanoxbar_reliability::fsim::{PackedSim, PackedVectors};
///
/// let mut config = Crossbar::new(ArraySize::new(2, 3));
/// config.set(0, 0, true);
/// config.set(1, 2, true);
/// let vectors = vec![vec![true, true, true], vec![false, true, true]];
/// let packed = PackedVectors::pack(&vectors, 3);
/// let sim = PackedSim::new(&config, &packed[0]);
/// // The second vector (bit 1) drives column 0 low and sees the fault.
/// let detecting = sim.detect_word(FabricFault::StuckOpen { row: 0, col: 0 });
/// assert_eq!(detecting, 0b10);
/// ```
#[derive(Clone, Debug)]
pub struct PackedSim<'a> {
    config: &'a Crossbar,
    lines: &'a [u64],
    vmask: u64,
    golden: Vec<u64>,
}

impl<'a> PackedSim<'a> {
    /// Builds the simulator and computes the golden row words (one
    /// wired-AND pass over the array).
    pub fn new(config: &'a Crossbar, vectors: &'a PackedVectors) -> Self {
        let size = config.size();
        assert_eq!(vectors.lines.len(), size.cols, "vector arity mismatch");
        let vmask = vectors.vector_mask();
        let golden = (0..size.rows)
            .map(|r| {
                (0..size.cols)
                    .filter(|&c| config.is_programmed(r, c))
                    .fold(vmask, |acc, c| acc & vectors.lines[c])
            })
            .collect();
        PackedSim {
            config,
            lines: &vectors.lines,
            vmask,
            golden,
        }
    }

    /// The golden (fault-free) response words, one per row.
    pub fn golden(&self) -> &[u64] {
        &self.golden
    }

    /// Recomputes row `r`'s word with column `skip` forced high (i.e.
    /// excluded from the wired-AND).
    fn row_word_excluding(&self, r: usize, skip: usize) -> u64 {
        (0..self.config.size().cols)
            .filter(|&c| c != skip && self.config.is_programmed(r, c))
            .fold(self.vmask, |acc, c| acc & self.lines[c])
    }

    /// Recomputes row `r`'s word with columns `col` and `col + 1` both
    /// reading `merged`.
    fn row_word_bridged(&self, r: usize, col: usize, merged: u64) -> u64 {
        (0..self.config.size().cols)
            .filter(|&c| self.config.is_programmed(r, c))
            .fold(self.vmask, |acc, c| {
                acc & if c == col || c == col + 1 {
                    merged
                } else {
                    self.lines[c]
                }
            })
    }

    /// The set of packed vectors (as a bitmask) under which some
    /// observable row differs from golden with `fault` injected —
    /// non-zero exactly when the scalar [`detects`] holds for some packed
    /// vector.
    ///
    /// # Panics
    ///
    /// Panics if the fault's coordinates are out of range for the
    /// configuration.
    pub fn detect_word(&self, fault: FabricFault) -> u64 {
        let size = self.config.size();
        match fault {
            FabricFault::StuckOpen { row, col } => {
                if self.config.is_programmed(row, col) {
                    self.row_word_excluding(row, col) ^ self.golden[row]
                } else {
                    0
                }
            }
            FabricFault::StuckClosed { row, col } => {
                if self.config.is_programmed(row, col) {
                    0
                } else {
                    // The parasitic device ANDs one more line into the row.
                    self.golden[row] & !self.lines[col]
                }
            }
            FabricFault::Functional { row, col } => {
                if self.config.is_programmed(row, col) {
                    (self.row_word_excluding(row, col) & !self.lines[col]) ^ self.golden[row]
                } else {
                    0
                }
            }
            FabricFault::BridgeRows { row } => {
                assert!(row + 1 < size.rows, "row bridge out of range");
                // Both rows read the AND of their products: a difference
                // shows exactly where the two golden words disagree.
                self.golden[row] ^ self.golden[row + 1]
            }
            FabricFault::RowOpen { row } => {
                // The broken wire floats high on every vector.
                !self.golden[row] & self.vmask
            }
            FabricFault::BridgeCols { col } => {
                assert!(col + 1 < size.cols, "column bridge out of range");
                let merged = self.lines[col] & self.lines[col + 1];
                (0..size.rows)
                    .filter(|&r| {
                        self.config.is_programmed(r, col) || self.config.is_programmed(r, col + 1)
                    })
                    .fold(0, |acc, r| {
                        acc | (self.row_word_bridged(r, col, merged) ^ self.golden[r])
                    })
            }
            FabricFault::ColOpen { col } => {
                assert!(col < size.cols, "column open out of range");
                (0..size.rows)
                    .filter(|&r| self.config.is_programmed(r, col))
                    .fold(0, |acc, r| {
                        acc | (self.row_word_excluding(r, col) ^ self.golden[r])
                    })
            }
        }
    }
}

/// Simulates row responses on a chip with fabrication defects (multi-fault:
/// every crosspoint defect in the map is active simultaneously). Used by
/// the self-mapping (BISM) and defect-unaware-flow experiments.
///
/// This is the scalar reference path; sweeps that apply many vectors to
/// one (configuration, defect map) pair should use the word-parallel
/// [`PackedDefectSim`], which computes all packed vectors in one pass.
///
/// # Panics
///
/// Panics if the defect map, configuration, and vector disagree on size.
pub fn simulate_with_defects(
    config: &Crossbar,
    defects: &DefectMap,
    vector: &TestVector,
) -> Vec<bool> {
    let size = config.size();
    assert_eq!(defects.size(), size, "defect map size mismatch");
    assert_eq!(vector.len(), size.cols, "vector arity mismatch");
    (0..size.rows)
        .map(|r| {
            (0..size.cols).all(|c| {
                let present = match defects.health(r, c) {
                    CrosspointHealth::Good => config.is_programmed(r, c),
                    CrosspointHealth::StuckOpen => false,
                    CrosspointHealth::StuckClosed => true,
                };
                !present || vector[c]
            })
        })
        .collect()
}

/// Word-parallel defect-map simulator: the [`simulate_with_defects`]
/// semantics evaluated for **all packed vectors at once**.
///
/// The defect map only changes which devices are present — a
/// vector-independent predicate — so row `r`'s response under every
/// packed vector is one wired-AND fold over its present columns:
/// `rows × cols` word operations replace `vectors × rows × cols` boolean
/// operations. This is what turns the per-vector loops of
/// `application_bist` / `application_bisd` / `DiagnosisPlan::diagnose`
/// into whole-test-set word ops.
///
/// # Examples
///
/// ```
/// use nanoxbar_crossbar::{ArraySize, Crossbar};
/// use nanoxbar_reliability::defect::{CrosspointHealth, DefectMap};
/// use nanoxbar_reliability::fsim::{simulate_with_defects, PackedDefectSim, PackedVectors};
///
/// let size = ArraySize::new(2, 3);
/// let mut config = Crossbar::new(size);
/// config.set(0, 0, true);
/// let mut defects = DefectMap::healthy(size);
/// defects.set(1, 2, CrosspointHealth::StuckClosed);
/// let vectors = vec![vec![true, true, false], vec![false, true, true]];
/// let packed = PackedVectors::pack(&vectors, 3);
/// let rows = PackedDefectSim::new(&config, &defects).rows(&packed[0]);
/// for (j, vector) in vectors.iter().enumerate() {
///     let scalar = simulate_with_defects(&config, &defects, vector);
///     for (r, &row) in scalar.iter().enumerate() {
///         assert_eq!((rows[r] >> j) & 1 == 1, row);
///     }
/// }
/// ```
#[derive(Clone, Debug)]
pub struct PackedDefectSim<'a> {
    config: &'a Crossbar,
    defects: &'a DefectMap,
}

impl<'a> PackedDefectSim<'a> {
    /// Pairs a configuration with a defect map.
    ///
    /// # Panics
    ///
    /// Panics if the defect map and configuration disagree on size.
    pub fn new(config: &'a Crossbar, defects: &'a DefectMap) -> Self {
        assert_eq!(defects.size(), config.size(), "defect map size mismatch");
        PackedDefectSim { config, defects }
    }

    /// True if the device at `(row, col)` conducts on the defective chip.
    fn present(&self, row: usize, col: usize) -> bool {
        match self.defects.health(row, col) {
            CrosspointHealth::Good => self.config.is_programmed(row, col),
            CrosspointHealth::StuckOpen => false,
            CrosspointHealth::StuckClosed => true,
        }
    }

    /// Row response words: bit `j` of entry `r` is row `r`'s value under
    /// packed vector `j` (bits beyond [`PackedVectors::count`] are zero).
    ///
    /// # Panics
    ///
    /// Panics if the vectors' arity differs from the configuration's.
    pub fn rows(&self, vectors: &PackedVectors) -> Vec<u64> {
        let mut out = Vec::new();
        self.rows_into(vectors, &mut out);
        out
    }

    /// [`PackedDefectSim::rows`] into a caller-owned buffer (cleared and
    /// refilled), so per-attempt sweeps reuse one allocation.
    ///
    /// # Panics
    ///
    /// Panics if the vectors' arity differs from the configuration's.
    pub fn rows_into(&self, vectors: &PackedVectors, out: &mut Vec<u64>) {
        let size = self.config.size();
        assert_eq!(vectors.lines.len(), size.cols, "vector arity mismatch");
        let vmask = vectors.vector_mask();
        out.clear();
        out.extend((0..size.rows).map(|r| {
            (0..size.cols)
                .filter(|&c| self.present(r, c))
                .fold(vmask, |acc, c| acc & vectors.lines[c])
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_crossbar::ArraySize;

    /// 2x3 fabric: row 0 programs columns {0,1}; row 1 programs {2}.
    fn sample_config() -> Crossbar {
        let mut xb = Crossbar::new(ArraySize::new(2, 3));
        xb.set(0, 0, true);
        xb.set(0, 1, true);
        xb.set(1, 2, true);
        xb
    }

    #[test]
    fn golden_semantics_wired_and() {
        let xb = sample_config();
        assert_eq!(
            golden_rows(&xb, &vec![true, true, false]),
            vec![true, false]
        );
        assert_eq!(
            golden_rows(&xb, &vec![true, false, true]),
            vec![false, true]
        );
        // Empty row (no devices) would read 1; row 1 only depends on col 2.
    }

    #[test]
    fn stuck_open_detected_by_zero_on_its_column() {
        let xb = sample_config();
        let fault = FabricFault::StuckOpen { row: 0, col: 1 };
        // x1=0 should force row 0 low; the missing device leaves it high.
        assert!(detects(&xb, fault, &vec![true, false, true]));
        // All-ones cannot see it.
        assert!(!detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    fn stuck_closed_detected_by_zero_on_foreign_column() {
        let xb = sample_config();
        let fault = FabricFault::StuckClosed { row: 1, col: 0 };
        // Row 1 should ignore column 0; the stuck device ANDs it in.
        assert!(detects(&xb, fault, &vec![false, true, true]));
        assert!(!detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    fn bridge_rows_merges_products() {
        let xb = sample_config();
        let fault = FabricFault::BridgeRows { row: 0 };
        // x = (1,1,0): row0 golden 1, row1 golden 0; merged = 0 on both.
        let faulty = simulate_rows(&xb, Some(fault), &vec![true, true, false]);
        assert_eq!(faulty, vec![false, false]);
        assert!(detects(&xb, fault, &vec![true, true, false]));
    }

    #[test]
    fn bridge_cols_ands_line_values() {
        let xb = sample_config();
        let fault = FabricFault::BridgeCols { col: 1 };
        // x = (1,1,0): bridged cols 1,2 both read 0 -> row 0 sees x1=0.
        assert!(detects(&xb, fault, &vec![true, true, false]));
    }

    #[test]
    fn row_open_reads_high() {
        let xb = sample_config();
        let fault = FabricFault::RowOpen { row: 0 };
        // x0 = 0 forces row 0 low; break floats it high.
        assert!(detects(&xb, fault, &vec![false, true, true]));
    }

    #[test]
    fn col_open_equivalent_to_missing_devices() {
        let xb = sample_config();
        let fault = FabricFault::ColOpen { col: 2 };
        assert!(detects(&xb, fault, &vec![true, true, false]));
        assert!(!detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    fn functional_inversion_detected_at_ones() {
        let xb = sample_config();
        let fault = FabricFault::Functional { row: 0, col: 0 };
        assert!(detects(&xb, fault, &vec![true, true, true]));
    }

    #[test]
    #[should_panic(expected = "vector arity mismatch")]
    fn wrong_vector_length_panics() {
        let xb = sample_config();
        let _ = golden_rows(&xb, &vec![true; 5]);
    }

    #[test]
    fn detects_with_golden_matches_detects() {
        let xb = sample_config();
        let vector = vec![true, false, true];
        let golden = golden_rows(&xb, &vector);
        for fault in crate::fault::fault_universe(xb.size()) {
            assert_eq!(
                detects_with_golden(&xb, fault, &vector, &golden),
                detects(&xb, fault, &vector),
                "{fault:?}"
            );
        }
    }

    #[test]
    fn packed_vectors_layout_and_chunking() {
        let vectors: Vec<TestVector> = (0..70).map(|i| vec![i % 2 == 0, i % 3 == 0]).collect();
        let chunks = PackedVectors::pack(&vectors, 2);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].count(), 64);
        assert_eq!(chunks[1].count(), 6);
        assert_eq!(chunks[1].vector_mask(), 0b11_1111);
        for (w, chunk) in chunks.iter().enumerate() {
            for j in 0..chunk.count() {
                for (c, line) in chunk.lines.iter().enumerate() {
                    assert_eq!(
                        (line >> j) & 1 == 1,
                        vectors[w * 64 + j][c],
                        "chunk {w} vector {j} col {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn packed_defect_rows_match_scalar_simulation() {
        use crate::defect::{CrosspointHealth, DefectMap};
        let mut state = 0xDEFEC7u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (rows, cols) in [(1usize, 1usize), (2, 3), (4, 4), (3, 7), (6, 2)] {
            let size = ArraySize::new(rows, cols);
            for _ in 0..8 {
                let mut config = Crossbar::new(size);
                let mut defects = DefectMap::healthy(size);
                for r in 0..rows {
                    for c in 0..cols {
                        config.set(r, c, next() % 3 != 0);
                        match next() % 5 {
                            0 => defects.set(r, c, CrosspointHealth::StuckOpen),
                            1 => defects.set(r, c, CrosspointHealth::StuckClosed),
                            _ => {}
                        }
                    }
                }
                let vectors: Vec<TestVector> = (0..cols + 3)
                    .map(|_| (0..cols).map(|_| next() & 1 == 1).collect())
                    .collect();
                let packed = PackedVectors::pack(&vectors, cols);
                let sim = PackedDefectSim::new(&config, &defects);
                let words = sim.rows(&packed[0]);
                for (j, vector) in vectors.iter().enumerate() {
                    let scalar = simulate_with_defects(&config, &defects, vector);
                    for (r, &row) in scalar.iter().enumerate() {
                        assert_eq!(
                            (words[r] >> j) & 1 == 1,
                            row,
                            "row {r} vector {j} on\n{config}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn detect_word_matches_scalar_detects_exhaustively() {
        // Random configurations, all standard-shaped vectors, the whole
        // fault universe: every bit of every detect word must equal the
        // scalar verdict.
        let mut state = 0x0BAD_F00Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for (rows, cols) in [(1usize, 1usize), (2, 3), (4, 4), (5, 2), (3, 7)] {
            let size = ArraySize::new(rows, cols);
            for _ in 0..6 {
                let mut config = Crossbar::new(size);
                for r in 0..rows {
                    for c in 0..cols {
                        if next() % 3 != 0 {
                            config.set(r, c, true);
                        }
                    }
                }
                let vectors: Vec<TestVector> = (0..cols + 5)
                    .map(|_| (0..cols).map(|_| next() & 1 == 1).collect())
                    .collect();
                let packed = PackedVectors::pack(&vectors, cols);
                assert_eq!(packed.len(), 1);
                let sim = PackedSim::new(&config, &packed[0]);
                for fault in crate::fault::fault_universe(size) {
                    let word = sim.detect_word(fault);
                    for (j, vector) in vectors.iter().enumerate() {
                        assert_eq!(
                            (word >> j) & 1 == 1,
                            detects(&config, fault, vector),
                            "fault {fault:?} vector {vector:?} on\n{config}"
                        );
                    }
                }
            }
        }
    }
}
