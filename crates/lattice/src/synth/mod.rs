//! Lattice synthesis algorithms.
//!
//! * [`dual_based`] — the Fig. 5 construction (`P(f^D) × P(f)`, always
//!   correct, not necessarily optimal);
//! * [`compose`] — OR/AND composition with 0-columns and 1-rows
//!   (Sec. III-B-1, ref \[3\]);
//! * [`pcircuit`] — P-circuit decomposition preprocessing (Sec. III-B-1);
//! * [`dreducible`] — affine-space (D-reducible) preprocessing
//!   (Sec. III-B-2);
//! * [`optimal`] — SAT-based minimum-area synthesis (ref \[9\]), used to
//!   measure the optimality gap of the constructions above;
//! * [`compact`] — a verification-backed local post-optimisation pass
//!   (row/column elimination, constant downgrading).

pub mod compact;
pub mod compose;
pub mod dreducible;
pub mod dual_based;
pub mod optimal;
pub mod pcircuit;
