//! Criterion microbenchmarks: the word-parallel evaluation engine versus
//! the scalar reference paths it replaced (PR "word-parallel evaluation
//! engine" acceptance evidence — target ≥10× on `to_truth_table` at
//! n ≥ 12 and on 16×16 BIST fault-universe coverage), plus the
//! multi-core follow-up: thread-scaling sweeps over the pool
//! (`threads/...` groups) and the packed defect simulation behind
//! BISM/BISD (`defect-sim`, `diagnose` groups).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nanoxbar_crossbar::ArraySize;
use nanoxbar_lattice::synth::dual_based;
use nanoxbar_lattice::{eval_top_bottom, BitEvaluator};
use nanoxbar_logic::suite::random_sop;
use nanoxbar_logic::TruthTable;
use nanoxbar_par as par;
use nanoxbar_reliability::bisd::DiagnosisPlan;
use nanoxbar_reliability::bist::TestPlan;
use nanoxbar_reliability::defect::DefectMap;
use nanoxbar_reliability::fault::fault_universe;
use nanoxbar_reliability::fsim::{
    simulate_with_defects, PackedDefectSim, PackedVectors, TestVector,
};

fn lattice_to_truth_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("to-truth-table");
    for n in [10usize, 12] {
        let f = random_sop(n, n, 0xBEEF + n as u64).to_truth_table();
        let lattice = dual_based::synthesize(&f);
        let label = format!("{}x{}/n={}", lattice.rows(), lattice.cols(), n);
        group.bench_with_input(BenchmarkId::new("scalar", &label), &lattice, |b, l| {
            b.iter(|| {
                TruthTable::from_fn(l.num_vars(), |m| {
                    eval_top_bottom(std::hint::black_box(l), m)
                })
                .count_ones()
            })
        });
        group.bench_with_input(BenchmarkId::new("word", &label), &lattice, |b, l| {
            let mut eval = BitEvaluator::new();
            b.iter(|| eval.function(std::hint::black_box(l)).count_ones())
        });
    }
    group.finish();
}

fn bist_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist-coverage");
    for n in [8usize, 16] {
        let size = ArraySize::new(n, n);
        let plan = TestPlan::generate(size);
        let universe = fault_universe(size);
        group.bench_with_input(BenchmarkId::new("scalar", n), &universe, |b, universe| {
            b.iter(|| {
                plan.coverage_scalar(size, std::hint::black_box(universe))
                    .detected
            })
        });
        group.bench_with_input(BenchmarkId::new("word", n), &universe, |b, universe| {
            b.iter(|| plan.coverage(size, std::hint::black_box(universe)).detected)
        });
    }
    group.finish();
}

/// Thread counts to sweep: 1, 2, 4, and the host's default when larger.
fn thread_counts() -> Vec<usize> {
    let host = par::threads();
    let mut counts = vec![1usize, 2, 4];
    if host > 4 {
        counts.push(host);
    }
    counts
}

fn thread_scaling_to_truth_table(c: &mut Criterion) {
    let host = par::threads();
    let mut group = c.benchmark_group("threads/to-truth-table-n12");
    let f = random_sop(12, 12, 0xBEEF + 12).to_truth_table();
    let lattice = dual_based::synthesize(&f);
    for t in thread_counts() {
        par::set_threads(t);
        group.bench_with_input(BenchmarkId::new("word", t), &lattice, |b, l| {
            let mut eval = BitEvaluator::new();
            b.iter(|| eval.function(std::hint::black_box(l)).count_ones())
        });
    }
    par::set_threads(host);
    group.finish();
}

fn thread_scaling_coverage(c: &mut Criterion) {
    let host = par::threads();
    let mut group = c.benchmark_group("threads/bist-coverage-16x16");
    let size = ArraySize::new(16, 16);
    let plan = TestPlan::generate(size);
    let universe = fault_universe(size);
    for t in thread_counts() {
        par::set_threads(t);
        group.bench_with_input(BenchmarkId::new("word", t), &universe, |b, universe| {
            b.iter(|| plan.coverage(size, std::hint::black_box(universe)).detected)
        });
    }
    par::set_threads(host);
    group.finish();
}

/// The packed defect simulation versus the scalar per-vector loop, on the
/// workload BISM's BIST performs per attempt (16×16 fabric, all-ones plus
/// 16 walking zeros).
fn defect_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("defect-sim");
    let size = ArraySize::new(16, 16);
    let mut config = nanoxbar_crossbar::Crossbar::new(size);
    let mut state = 0x5117_AB1Eu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for r in 0..16 {
        for c in 0..16 {
            config.set(r, c, next() % 3 != 0);
        }
    }
    let defects = DefectMap::random_uniform(size, 0.05, 0.03, 99);
    let mut vectors: Vec<TestVector> = vec![vec![true; 16]];
    for col in 0..16 {
        let mut v = vec![true; 16];
        v[col] = false;
        vectors.push(v);
    }
    group.bench_function("scalar", |b| {
        b.iter(|| {
            vectors
                .iter()
                .map(|v| {
                    simulate_with_defects(std::hint::black_box(&config), &defects, v)
                        .iter()
                        .filter(|&&x| x)
                        .count()
                })
                .sum::<usize>()
        })
    });
    let packed = PackedVectors::pack(&vectors, 16);
    group.bench_function("packed", |b| {
        let sim = PackedDefectSim::new(&config, &defects);
        let mut rows = Vec::new();
        b.iter(|| {
            packed
                .iter()
                .map(|chunk| {
                    sim.rows_into(std::hint::black_box(chunk), &mut rows);
                    rows.iter().map(|w| w.count_ones()).sum::<u32>()
                })
                .sum::<u32>()
        })
    });
    group.finish();
}

/// Whole-plan diagnosis on a 16×16 fabric: packed word path versus the
/// scalar per-vector reference.
fn diagnose(c: &mut Criterion) {
    let mut group = c.benchmark_group("diagnose");
    let size = ArraySize::new(16, 16);
    let plan = DiagnosisPlan::generate(size);
    let mut chip = DefectMap::healthy(size);
    chip.set(
        9,
        13,
        nanoxbar_reliability::defect::CrosspointHealth::StuckOpen,
    );
    group.bench_function("scalar", |b| {
        b.iter(|| plan.diagnose_scalar(std::hint::black_box(&chip)))
    });
    group.bench_function("packed", |b| {
        b.iter(|| plan.diagnose(std::hint::black_box(&chip)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = lattice_to_truth_table, bist_coverage, thread_scaling_to_truth_table,
        thread_scaling_coverage, defect_simulation, diagnose
}
criterion_main!(benches);
