//! Criterion microbenchmarks: the word-parallel evaluation engine versus
//! the scalar reference paths it replaced (PR "word-parallel evaluation
//! engine" acceptance evidence — target ≥10× on `to_truth_table` at
//! n ≥ 12 and on 16×16 BIST fault-universe coverage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use nanoxbar_crossbar::ArraySize;
use nanoxbar_lattice::synth::dual_based;
use nanoxbar_lattice::{eval_top_bottom, BitEvaluator};
use nanoxbar_logic::suite::random_sop;
use nanoxbar_logic::TruthTable;
use nanoxbar_reliability::bist::TestPlan;
use nanoxbar_reliability::fault::fault_universe;

fn lattice_to_truth_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("to-truth-table");
    for n in [10usize, 12] {
        let f = random_sop(n, n, 0xBEEF + n as u64).to_truth_table();
        let lattice = dual_based::synthesize(&f);
        let label = format!("{}x{}/n={}", lattice.rows(), lattice.cols(), n);
        group.bench_with_input(BenchmarkId::new("scalar", &label), &lattice, |b, l| {
            b.iter(|| {
                TruthTable::from_fn(l.num_vars(), |m| {
                    eval_top_bottom(std::hint::black_box(l), m)
                })
                .count_ones()
            })
        });
        group.bench_with_input(BenchmarkId::new("word", &label), &lattice, |b, l| {
            let mut eval = BitEvaluator::new();
            b.iter(|| eval.function(std::hint::black_box(l)).count_ones())
        });
    }
    group.finish();
}

fn bist_coverage(c: &mut Criterion) {
    let mut group = c.benchmark_group("bist-coverage");
    for n in [8usize, 16] {
        let size = ArraySize::new(n, n);
        let plan = TestPlan::generate(size);
        let universe = fault_universe(size);
        group.bench_with_input(BenchmarkId::new("scalar", n), &universe, |b, universe| {
            b.iter(|| {
                plan.coverage_scalar(size, std::hint::black_box(universe))
                    .detected
            })
        });
        group.bench_with_input(BenchmarkId::new("word", n), &universe, |b, universe| {
            b.iter(|| plan.coverage(size, std::hint::black_box(universe)).detected)
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = lattice_to_truth_table, bist_coverage
}
criterion_main!(benches);
