//! Berkeley PLA format reader/writer.
//!
//! The espresso/MCNC benchmark format used by the synthesis literature the
//! paper builds on (\[2\], \[5\], \[9\]). Supported directives: `.i`, `.o`, `.p`
//! (optional), `.ilb`, `.ob`, `.e`/`.end`; cube lines use `0`, `1`, `-` for
//! inputs and `1`, `0`, `-`/`~` for outputs (type-f semantics: `1` adds the
//! cube to that output's ON-set).

use std::fmt::Write as _;

use crate::cover::Cover;
use crate::cube::Cube;
use crate::error::LogicError;

/// A parsed multi-output PLA: one SOP cover per output.
#[derive(Clone, Debug)]
pub struct Pla {
    /// Number of inputs.
    pub num_inputs: usize,
    /// Input labels (possibly empty).
    pub input_labels: Vec<String>,
    /// Output labels (possibly empty).
    pub output_labels: Vec<String>,
    /// One cover per output, in declaration order.
    pub outputs: Vec<Cover>,
}

impl Pla {
    /// The cover of the only output of a single-output PLA.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::OutputCountMismatch`] when the PLA declares
    /// any other number of outputs — the typed replacement for the old
    /// panicking accessor, so multi-output files reaching a single-output
    /// consumer fail as data errors, not crashes.
    pub fn single_output(&self) -> Result<&Cover, LogicError> {
        match self.outputs.as_slice() {
            [only] => Ok(only),
            outputs => Err(LogicError::OutputCountMismatch {
                expected: 1,
                found: outputs.len(),
            }),
        }
    }
}

/// Parses PLA text.
///
/// # Errors
///
/// Returns [`LogicError::ParsePla`] with a 1-based line number on any
/// malformed directive or cube row.
///
/// # Examples
///
/// ```
/// use nanoxbar_logic::pla::parse_pla;
///
/// let text = "\
/// .i 2
/// .o 1
/// 11 1
/// 00 1
/// .e
/// ";
/// let pla = parse_pla(text)?;
/// let f = pla.single_output()?;
/// assert_eq!(f.product_count(), 2);
/// assert!(f.eval(0b00) && f.eval(0b11) && !f.eval(0b01));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn parse_pla(text: &str) -> Result<Pla, LogicError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut input_labels = Vec::new();
    let mut output_labels = Vec::new();
    let mut ilb_line = 0usize;
    let mut ob_line = 0usize;
    let mut rows: Vec<(usize, Cube, Vec<char>)> = Vec::new();

    let err = |line: usize, message: &str| LogicError::ParsePla {
        line,
        message: message.to_string(),
    };

    for (lineno, raw) in text.lines().enumerate() {
        let line_num = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('.') {
            let mut it = rest.split_whitespace();
            let kw = it.next().unwrap_or("");
            match kw {
                "i" => {
                    let v: usize = it
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err(line_num, "malformed .i"))?;
                    if v > 64 {
                        return Err(LogicError::TooManyVariables {
                            requested: v,
                            max: 64,
                        });
                    }
                    num_inputs = Some(v);
                }
                "o" => {
                    num_outputs = Some(
                        it.next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| err(line_num, "malformed .o"))?,
                    );
                }
                "p" => { /* product count is advisory */ }
                "ilb" => {
                    ilb_line = line_num;
                    input_labels = it.map(String::from).collect();
                }
                "ob" => {
                    ob_line = line_num;
                    output_labels = it.map(String::from).collect();
                }
                "e" | "end" => break,
                other => {
                    return Err(err(line_num, &format!("unsupported directive .{other}")));
                }
            }
            continue;
        }

        // Cube row.
        let ni = num_inputs.ok_or_else(|| err(line_num, "cube before .i"))?;
        let no = num_outputs.ok_or_else(|| err(line_num, "cube before .o"))?;
        let compact: Vec<char> = line.chars().filter(|c| !c.is_whitespace()).collect();
        if compact.len() != ni + no {
            return Err(err(
                line_num,
                &format!("expected {} columns, found {}", ni + no, compact.len()),
            ));
        }
        let mut pos = 0u64;
        let mut neg = 0u64;
        for (v, &c) in compact[..ni].iter().enumerate() {
            match c {
                '1' => pos |= 1 << v,
                '0' => neg |= 1 << v,
                '-' | '~' => {}
                other => {
                    return Err(err(line_num, &format!("bad input column {other:?}")));
                }
            }
        }
        let cube = Cube::from_masks(ni, pos, neg).map_err(|e| err(line_num, &e.to_string()))?;
        rows.push((line_num, cube, compact[ni..].to_vec()));
    }

    let ni = num_inputs.ok_or_else(|| err(1, "missing .i directive"))?;
    let no = num_outputs.ok_or_else(|| err(1, "missing .o directive"))?;
    // Label lists are optional, but a present list must match its
    // declaration — a mismatch means columns would be attributed to the
    // wrong signal downstream.
    if !input_labels.is_empty() && input_labels.len() != ni {
        return Err(err(
            ilb_line,
            &format!(".ilb names {} inputs, .i declares {ni}", input_labels.len()),
        ));
    }
    if !output_labels.is_empty() && output_labels.len() != no {
        return Err(err(
            ob_line,
            &format!(
                ".ob names {} outputs, .o declares {no}",
                output_labels.len()
            ),
        ));
    }

    let mut outputs = vec![Cover::zero(ni); no];
    for (line_num, cube, out_cols) in rows {
        for (o, &c) in out_cols.iter().enumerate() {
            match c {
                '1' => outputs[o].push(cube),
                '0' | '-' | '~' => {}
                other => {
                    return Err(err(line_num, &format!("bad output column {other:?}")));
                }
            }
        }
    }

    Ok(Pla {
        num_inputs: ni,
        input_labels,
        output_labels,
        outputs,
    })
}

/// Serialises a single-output cover to PLA text.
///
/// ```
/// use nanoxbar_logic::pla::{parse_pla, write_pla};
/// use nanoxbar_logic::{isop_cover, parse_function};
///
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let text = write_pla(&isop_cover(&f));
/// let back = parse_pla(&text)?;
/// assert!(back.single_output()?.computes(&f));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn write_pla(cover: &Cover) -> String {
    let mut out = String::new();
    let _ = writeln!(out, ".i {}", cover.num_vars());
    let _ = writeln!(out, ".o 1");
    let _ = writeln!(out, ".p {}", cover.product_count());
    for c in cover.cubes() {
        let _ = writeln!(out, "{c} 1");
    }
    let _ = writeln!(out, ".e");
    out
}

/// Serialises a multi-output PLA: one cover per output column, one row
/// per `(cube, output)` pair (type-f semantics, like the parser).
///
/// # Errors
///
/// [`LogicError::OutputCountMismatch`] for an empty output list, and
/// [`LogicError::CubeArityMismatch`] when the covers disagree on input
/// arity — both typed rejections, never panics.
///
/// ```
/// use nanoxbar_logic::pla::{parse_pla, write_pla_multi};
/// use nanoxbar_logic::{isop_cover, parse_function};
///
/// let sum = parse_function("x0 ^ x1 ^ x2")?;
/// let carry = parse_function("x0 x1 + x0 x2 + x1 x2")?;
/// let text = write_pla_multi(&[isop_cover(&sum), isop_cover(&carry)])?;
/// let back = parse_pla(&text)?;
/// assert!(back.outputs[0].computes(&sum));
/// assert!(back.outputs[1].computes(&carry));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn write_pla_multi(outputs: &[Cover]) -> Result<String, LogicError> {
    let first = outputs.first().ok_or(LogicError::OutputCountMismatch {
        expected: 1,
        found: 0,
    })?;
    let ni = first.num_vars();
    for cover in outputs {
        if cover.num_vars() != ni {
            return Err(LogicError::CubeArityMismatch {
                expected: ni,
                found: cover.num_vars(),
            });
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, ".i {ni}");
    let _ = writeln!(out, ".o {}", outputs.len());
    let products: usize = outputs.iter().map(Cover::product_count).sum();
    let _ = writeln!(out, ".p {products}");
    for (o, cover) in outputs.iter().enumerate() {
        for c in cover.cubes() {
            let mut cols = vec!['0'; outputs.len()];
            cols[o] = '1';
            let cols: String = cols.into_iter().collect();
            let _ = writeln!(out, "{c} {cols}");
        }
    }
    let _ = writeln!(out, ".e");
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::parse_function;
    use crate::isop::isop_cover;

    #[test]
    fn parses_multi_output_with_labels_and_comments() {
        let text = "\
# adder bit
.i 3
.o 2
.ilb a b cin
.ob sum cout
11- 01
1-1 01
-11 01
100 10
010 10
001 10
111 10
.e
";
        let pla = parse_pla(text).unwrap();
        assert_eq!(pla.num_inputs, 3);
        assert_eq!(pla.input_labels, vec!["a", "b", "cin"]);
        assert_eq!(pla.outputs.len(), 2);
        let sum = &pla.outputs[0]; // note .ob order: sum is column 0
        let cout = &pla.outputs[1];
        // cout = majority, sum = parity
        let majority = parse_function("x0 x1 + x0 x2 + x1 x2").unwrap();
        let parity = parse_function("x0 ^ x1 ^ x2").unwrap();
        assert!(cout.computes(&parity) || cout.computes(&majority));
        assert!(sum.computes(&majority) || sum.computes(&parity));
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(matches!(
            parse_pla(".i 2\n.o 1\n1 1\n.e\n"),
            Err(LogicError::ParsePla { line: 3, .. })
        ));
        assert!(matches!(
            parse_pla(".i 2\n.o 1\n12 1\n.e\n"),
            Err(LogicError::ParsePla { line: 3, .. })
        ));
        assert!(matches!(
            parse_pla("11 1\n.e\n"),
            Err(LogicError::ParsePla { .. })
        ));
        assert!(matches!(
            parse_pla(".i 2\n.foo\n"),
            Err(LogicError::ParsePla { line: 2, .. })
        ));
    }

    #[test]
    fn roundtrip_random_covers() {
        let mut state = 0xA5A5A5A5DEADBEEFu64;
        for n in 1..=6 {
            for _ in 0..10 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let bits = state;
                let f = crate::truth_table::TruthTable::from_fn(n, |m| (bits >> (m % 64)) & 1 == 1);
                let cover = isop_cover(&f);
                let text = write_pla(&cover);
                let back = parse_pla(&text).unwrap();
                assert!(back.single_output().unwrap().computes(&f));
            }
        }
    }

    #[test]
    fn dash_and_tilde_outputs_are_ignored() {
        let pla = parse_pla(".i 1\n.o 2\n1 1~\n0 -1\n.e\n").unwrap();
        assert_eq!(pla.outputs[0].product_count(), 1);
        assert_eq!(pla.outputs[1].product_count(), 1);
    }

    #[test]
    fn single_output_accessor_is_typed_not_panicking() {
        let multi = parse_pla(".i 1\n.o 2\n1 11\n.e\n").unwrap();
        assert_eq!(
            multi.single_output(),
            Err(LogicError::OutputCountMismatch {
                expected: 1,
                found: 2
            })
        );
        let single = parse_pla(".i 1\n.o 1\n1 1\n.e\n").unwrap();
        assert!(single.single_output().is_ok());
    }

    #[test]
    fn label_counts_must_match_declarations() {
        let bad_ob = parse_pla(".i 2\n.o 1\n.ob a b\n11 1\n.e\n");
        assert!(matches!(bad_ob, Err(LogicError::ParsePla { line: 3, .. })));
        let bad_ilb = parse_pla(".i 2\n.o 1\n.ilb a\n11 1\n.e\n");
        assert!(matches!(bad_ilb, Err(LogicError::ParsePla { line: 3, .. })));
    }

    #[test]
    fn bad_output_columns_report_their_line() {
        let bad = parse_pla(".i 2\n.o 1\n11 1\n00 x\n.e\n");
        assert!(matches!(bad, Err(LogicError::ParsePla { line: 4, .. })));
    }

    #[test]
    fn multi_writer_roundtrips_and_rejects_mismatches() {
        let sum = parse_function("x0 ^ x1").unwrap();
        let carry = parse_function("x0 x1").unwrap();
        let covers = vec![isop_cover(&sum), isop_cover(&carry)];
        let text = write_pla_multi(&covers).unwrap();
        let back = parse_pla(&text).unwrap();
        assert_eq!(back.outputs.len(), 2);
        assert!(back.outputs[0].computes(&sum));
        assert!(back.outputs[1].computes(&carry));

        assert_eq!(
            write_pla_multi(&[]),
            Err(LogicError::OutputCountMismatch {
                expected: 1,
                found: 0
            })
        );
        let three = parse_function("x0 x1 + x2").unwrap();
        assert_eq!(
            write_pla_multi(&[isop_cover(&sum), isop_cover(&three)]),
            Err(LogicError::CubeArityMismatch {
                expected: 2,
                found: 3
            })
        );
    }
}
