//! Offline stand-in for `rand_chacha`'s [`ChaCha8Rng`].
//!
//! The workspace only needs a deterministic, statistically sound,
//! seedable generator — not the ChaCha stream cipher itself (no
//! cryptographic claims are made anywhere). This stand-in keeps the type
//! and trait surface (`ChaCha8Rng::seed_from_u64`, `RngCore`) but is
//! backed by xoshiro256++ seeded through SplitMix64, which passes the
//! statistical quality bar for the Monte-Carlo simulations here. Streams
//! differ from the real ChaCha8, so seeds are not portable to builds
//! using the genuine crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (xoshiro256++ core).
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    s: [u64; 4],
}

impl ChaCha8Rng {
    /// The raw generator state, for checkpointing. Restoring it with
    /// [`ChaCha8Rng::from_state`] resumes the stream at exactly this
    /// position.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a [`ChaCha8Rng::state`] snapshot.
    pub fn from_state(s: [u64; 4]) -> Self {
        ChaCha8Rng { s }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        ChaCha8Rng { s }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn state_roundtrip_resumes_stream_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..13 {
            rng.next_u64();
        }
        let mut resumed = ChaCha8Rng::from_state(rng.state());
        for _ in 0..100 {
            assert_eq!(rng.next_u64(), resumed.next_u64());
        }
    }

    #[test]
    fn unit_uniform_mean_is_sane() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
