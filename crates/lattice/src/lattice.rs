//! The four-terminal switch lattice model (paper Fig. 1 and Fig. 4).
//!
//! A lattice is an R×C grid of four-terminal switches. Each switch is
//! controlled by a literal (or tied to a constant): when its control
//! evaluates to 1 the four terminals are mutually connected, otherwise
//! disconnected. The lattice computes 1 exactly when a path of ON switches
//! connects the top plate to the bottom plate (4-neighbour adjacency).

use std::fmt;

use nanoxbar_logic::Literal;

/// The control assigned to one lattice site.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Site {
    /// Controlled by a literal.
    Literal(Literal),
    /// Tied permanently ON (`true`) or OFF (`false`) — used by the
    /// composition rules (paper Sec. III-B-1: padding columns of 0s and
    /// rows of 1s).
    Const(bool),
}

impl Site {
    /// The site's switch state under minterm `m`.
    pub fn is_on(&self, m: u64) -> bool {
        match self {
            Site::Literal(l) => l.eval(m),
            Site::Const(b) => *b,
        }
    }

    /// The site with its literal complemented (constants unchanged).
    pub fn complement(&self) -> Site {
        match self {
            Site::Literal(l) => Site::Literal(l.complement()),
            Site::Const(b) => Site::Const(*b),
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Site::Literal(l) => write!(f, "{l}"),
            Site::Const(b) => write!(f, "{}", u8::from(*b)),
        }
    }
}

/// A four-terminal switching lattice.
///
/// # Examples
///
/// The paper's Fig. 4 lattice (renumbered to variables `x0..x5`):
///
/// ```
/// use nanoxbar_lattice::{Lattice, Site};
/// use nanoxbar_logic::{parse_function, Literal};
///
/// let lattice = Lattice::from_rows(6, vec![
///     vec![Site::Literal(Literal::positive(0)), Site::Literal(Literal::positive(3))],
///     vec![Site::Literal(Literal::positive(1)), Site::Literal(Literal::positive(4))],
///     vec![Site::Literal(Literal::positive(2)), Site::Literal(Literal::positive(5))],
/// ])?;
/// let f = parse_function("x0x1x2 + x0x1x4x5 + x1x2x3x4 + x3x4x5")?;
/// assert!(lattice.computes(&f));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lattice {
    rows: usize,
    cols: usize,
    num_vars: usize,
    sites: Vec<Site>,
}

impl Lattice {
    /// Builds a lattice from row-major site rows.
    ///
    /// # Errors
    ///
    /// Returns an error message if the grid is empty or ragged, or if a
    /// literal references a variable `>= num_vars`.
    pub fn from_rows(num_vars: usize, rows: Vec<Vec<Site>>) -> Result<Self, String> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err("lattice must have at least one row and one column".into());
        }
        let cols = rows[0].len();
        if rows.iter().any(|r| r.len() != cols) {
            return Err("ragged lattice rows".into());
        }
        let sites: Vec<Site> = rows.into_iter().flatten().collect();
        for s in &sites {
            if let Site::Literal(l) = s {
                if l.var() >= num_vars {
                    return Err(format!("site literal {l} out of range for {num_vars} vars"));
                }
            }
        }
        Ok(Lattice {
            rows: sites.len() / cols,
            cols,
            num_vars,
            sites,
        })
    }

    /// A 1×1 lattice computing a constant.
    pub fn constant(num_vars: usize, value: bool) -> Self {
        Lattice {
            rows: 1,
            cols: 1,
            num_vars,
            sites: vec![Site::Const(value)],
        }
    }

    /// A 1×1 lattice computing a single literal.
    pub fn single_literal(num_vars: usize, lit: Literal) -> Self {
        assert!(lit.var() < num_vars, "literal out of range");
        Lattice {
            rows: 1,
            cols: 1,
            num_vars,
            sites: vec![Site::Literal(lit)],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of sites (the paper's area metric).
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }

    /// Arity of the computed function.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The site at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range (also for [`Lattice::set_site`]).
    pub fn site(&self, row: usize, col: usize) -> Site {
        assert!(
            row < self.rows && col < self.cols,
            "site ({row},{col}) out of range"
        );
        self.sites[row * self.cols + col]
    }

    /// Replaces the site at `(row, col)`.
    pub fn set_site(&mut self, row: usize, col: usize, site: Site) {
        assert!(
            row < self.rows && col < self.cols,
            "site ({row},{col}) out of range"
        );
        if let Site::Literal(l) = site {
            assert!(l.var() < self.num_vars, "literal out of range");
        }
        self.sites[row * self.cols + col] = site;
    }

    /// Extends the variable space (sites unchanged).
    pub fn with_num_vars(mut self, num_vars: usize) -> Self {
        assert!(num_vars >= self.num_vars, "cannot shrink variable space");
        self.num_vars = num_vars;
        self
    }

    /// Appends a copy of the bottom row. The computed function is unchanged
    /// (the duplicate row is ON exactly when the row above it is), which
    /// makes this the height-equalisation step for OR-composition.
    pub fn pad_to_rows(&self, rows: usize) -> Self {
        assert!(rows >= self.rows, "cannot remove rows by padding");
        let mut out = self.clone();
        while out.rows < rows {
            let last: Vec<Site> = out.sites[(out.rows - 1) * out.cols..].to_vec();
            out.sites.extend(last);
            out.rows += 1;
        }
        out
    }

    /// Appends a copy of the rightmost column; function unchanged —
    /// width-equalisation for AND-composition.
    pub fn pad_to_cols(&self, cols: usize) -> Self {
        assert!(cols >= self.cols, "cannot remove columns by padding");
        let mut out = self.clone();
        while out.cols < cols {
            let mut sites = Vec::with_capacity(out.rows * (out.cols + 1));
            for r in 0..out.rows {
                let row = &out.sites[r * out.cols..(r + 1) * out.cols];
                sites.extend_from_slice(row);
                sites.push(row[out.cols - 1]);
            }
            out.sites = sites;
            out.cols += 1;
        }
        out
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let width = (0..self.rows)
            .flat_map(|r| (0..self.cols).map(move |c| (r, c)))
            .map(|(r, c)| self.site(r, c).to_string().len())
            .max()
            .unwrap_or(1);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>width$}", self.site(r, c).to_string())?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: usize) -> Site {
        Site::Literal(Literal::positive(v))
    }

    #[test]
    fn construction_and_accessors() {
        let l = Lattice::from_rows(
            3,
            vec![vec![lit(0), lit(1)], vec![lit(2), Site::Const(true)]],
        )
        .unwrap();
        assert_eq!((l.rows(), l.cols(), l.area()), (2, 2, 4));
        assert_eq!(l.site(1, 1), Site::Const(true));
    }

    #[test]
    fn rejects_ragged_and_out_of_range() {
        assert!(Lattice::from_rows(2, vec![vec![lit(0)], vec![lit(1), lit(0)]]).is_err());
        assert!(Lattice::from_rows(1, vec![vec![lit(5)]]).is_err());
        assert!(Lattice::from_rows(1, vec![]).is_err());
    }

    #[test]
    fn site_states() {
        assert!(Site::Const(true).is_on(0));
        assert!(!Site::Const(false).is_on(u64::MAX));
        let s = Site::Literal(Literal::negative(1));
        assert!(s.is_on(0b01));
        assert!(!s.is_on(0b10));
        assert_eq!(s.complement(), Site::Literal(Literal::positive(1)));
    }

    #[test]
    fn padding_preserves_shape_invariants() {
        let l = Lattice::from_rows(2, vec![vec![lit(0), lit(1)]]).unwrap();
        let taller = l.pad_to_rows(3);
        assert_eq!(taller.rows(), 3);
        assert_eq!(taller.site(2, 0), lit(0));
        let wider = l.pad_to_cols(4);
        assert_eq!(wider.cols(), 4);
        assert_eq!(wider.site(0, 3), lit(1));
    }

    #[test]
    fn display_renders_grid() {
        let l = Lattice::from_rows(2, vec![vec![lit(0), Site::Const(false)]]).unwrap();
        let s = l.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains('0'));
    }
}
