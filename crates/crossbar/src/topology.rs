//! The programmable crossbar grid shared by every two-terminal array model.

use std::fmt;

/// Dimensions of a crossbar array (rows × columns).
///
/// ```
/// use nanoxbar_crossbar::ArraySize;
/// let s = ArraySize::new(2, 5);
/// assert_eq!(s.area(), 10);
/// assert_eq!(s.to_string(), "2x5");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ArraySize {
    /// Number of horizontal lines.
    pub rows: usize,
    /// Number of vertical lines.
    pub cols: usize,
}

impl ArraySize {
    /// Creates a size.
    pub fn new(rows: usize, cols: usize) -> Self {
        ArraySize { rows, cols }
    }

    /// Number of crosspoints.
    pub fn area(&self) -> usize {
        self.rows * self.cols
    }
}

impl fmt::Display for ArraySize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A bare programmable crossbar: a grid of crosspoints, each either
/// programmed (a device is formed at the junction) or left open.
///
/// The diode/FET models and the reliability engine (BIST, BISM, the
/// defect-unaware flow) all build on this grid.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Crossbar {
    size: ArraySize,
    programmed: Vec<bool>,
}

impl Crossbar {
    /// An unprogrammed crossbar of the given size.
    pub fn new(size: ArraySize) -> Self {
        Crossbar {
            size,
            programmed: vec![false; size.area()],
        }
    }

    /// The array dimensions.
    pub fn size(&self) -> ArraySize {
        self.size
    }

    fn idx(&self, row: usize, col: usize) -> usize {
        assert!(row < self.size.rows, "row {row} out of range");
        assert!(col < self.size.cols, "col {col} out of range");
        row * self.size.cols + col
    }

    /// Whether the crosspoint at `(row, col)` is programmed.
    ///
    /// # Panics
    ///
    /// Panics if out of range (also for [`Crossbar::set`]).
    pub fn is_programmed(&self, row: usize, col: usize) -> bool {
        self.programmed[self.idx(row, col)]
    }

    /// Programs or clears the crosspoint at `(row, col)`.
    pub fn set(&mut self, row: usize, col: usize, programmed: bool) {
        let i = self.idx(row, col);
        self.programmed[i] = programmed;
    }

    /// Clears the whole array (reconfiguration).
    pub fn clear(&mut self) {
        self.programmed.fill(false);
    }

    /// Number of programmed crosspoints.
    pub fn programmed_count(&self) -> usize {
        self.programmed.iter().filter(|&&b| b).count()
    }

    /// Iterator over programmed crosspoints as `(row, col)`.
    pub fn programmed_points(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.size.cols;
        self.programmed
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(i, _)| (i / cols, i % cols))
    }
}

impl fmt::Display for Crossbar {
    /// Renders the grid with `X` for programmed and `.` for open points.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.size.rows {
            for c in 0..self.size.cols {
                write!(f, "{}", if self.is_programmed(r, c) { 'X' } else { '.' })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_and_query() {
        let mut xb = Crossbar::new(ArraySize::new(3, 4));
        assert_eq!(xb.programmed_count(), 0);
        xb.set(1, 2, true);
        xb.set(2, 3, true);
        assert!(xb.is_programmed(1, 2));
        assert!(!xb.is_programmed(0, 0));
        assert_eq!(xb.programmed_count(), 2);
        let pts: Vec<_> = xb.programmed_points().collect();
        assert_eq!(pts, vec![(1, 2), (2, 3)]);
        xb.clear();
        assert_eq!(xb.programmed_count(), 0);
    }

    #[test]
    #[should_panic(expected = "row 5 out of range")]
    fn out_of_range_row_panics() {
        let xb = Crossbar::new(ArraySize::new(2, 2));
        let _ = xb.is_programmed(5, 0);
    }

    #[test]
    fn display_grid() {
        let mut xb = Crossbar::new(ArraySize::new(2, 2));
        xb.set(0, 1, true);
        assert_eq!(xb.to_string(), ".X\n..\n");
    }
}
