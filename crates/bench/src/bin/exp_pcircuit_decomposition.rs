//! E4 — Sec. III-B-1: P-circuit decomposition preprocessing.
//!
//! Lattice area with and without the P-circuit decomposition (best split
//! variable/polarity, blocks minimised with the interval don't-cares). The
//! paper reports the approach "confirmed by a set of experimental results"
//! on the methods of refs \[2\] and \[9\]; here the baseline is our dual-based
//! synthesis.

use nanoxbar_bench::{banner, f2};
use nanoxbar_core::report::Table;
use nanoxbar_lattice::synth::pcircuit;
use nanoxbar_logic::suite::{random_sop, standard_suite, BenchFunction};

fn main() {
    banner(
        "E4 / Sec. III-B-1",
        "P-circuit decomposition vs direct synthesis",
    );

    // Suite functions (small enough for exact interval minimisation) plus
    // decomposition-friendly random SOPs.
    let mut functions: Vec<BenchFunction> = standard_suite()
        .into_iter()
        .filter(|f| f.num_vars <= 8)
        .collect();
    for (i, &(n, p)) in [(6usize, 6usize), (7, 7), (8, 8), (8, 10)]
        .iter()
        .enumerate()
    {
        let cover = random_sop(n, p, 0x9C + i as u64);
        functions.push(BenchFunction {
            name: format!("sopx{n}v{p}p"),
            num_vars: n,
            table: cover.to_truth_table(),
        });
    }

    let mut table = Table::new(&["function", "vars", "direct", "p-circuit", "split", "ratio"]);
    let mut wins = 0usize;
    let mut total = 0usize;
    let mut log_ratio_sum = 0.0f64;

    for f in &functions {
        if f.table.is_zero() || f.table.is_ones() {
            continue;
        }
        let result = pcircuit::synthesize(&f.table);
        assert!(result.lattice.computes(&f.table), "{}", f.name);
        let direct = result.direct_area;
        let decomposed = result.lattice.area();
        let ratio = decomposed as f64 / direct as f64;
        log_ratio_sum += ratio.ln();
        total += 1;
        if decomposed < direct {
            wins += 1;
        }
        table.row_owned(vec![
            f.name.clone(),
            f.num_vars.to_string(),
            direct.to_string(),
            decomposed.to_string(),
            format!(
                "x{}={}",
                result.split_var,
                if result.polarity { 1 } else { 0 }
            ),
            f2(ratio),
        ]);
    }
    println!("{}", table.render());

    let geomean = (log_ratio_sum / total as f64).exp();
    println!("functions: {total}");
    println!(
        "p-circuit strictly smaller on: {wins} ({}%)",
        f2(wins as f64 / total as f64 * 100.0)
    );
    println!("geomean decomposed/direct area: {}", f2(geomean));
    println!(
        "\npaper claim (Sec. III-B-1): decomposition can reduce lattice area \
         -> {}",
        if wins > 0 {
            "REPRODUCED (strict wins observed)"
        } else {
            "NOT reproduced"
        }
    );
}
