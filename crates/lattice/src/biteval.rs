//! Word-parallel (bit-sliced) lattice evaluation: 64 minterms per grid
//! sweep lane, 4 lanes per sweep, and whole-table evaluation spread
//! across cores.
//!
//! # Bit-slicing layout
//!
//! The engine adopts [`TruthTable`]'s packed layout: minterm `m` lives at
//! bit `m & 63` of word `m >> 6`, so one `u64` carries the lattice's
//! behaviour on 64 consecutive input assignments at once. For each word
//! index `w`, every site gets a 64-bit **on-mask** — the slice of its
//! control literal's truth table ([`nanoxbar_logic::variable_word`]):
//! bit `i` of site `(r, c)`'s mask says whether the switch conducts under
//! minterm `64*w + i`. Variables `x0..x5` toggle inside a word (fixed
//! patterns such as `0xAAAA…`); variables `x6+` select whole words, so
//! their masks are all-ones or all-zeros per word.
//!
//! # Word-wise percolation
//!
//! Top→bottom evaluation asks, per minterm, whether a 4-connected path of
//! ON switches joins the top and bottom plates. Bit-sliced, each site
//! carries a **reach word** — the set of minterms for which the site is
//! connected to the top plate through ON switches. Row 0 seeds
//! `reach = mask`; interior sites satisfy the fixpoint equation
//!
//! ```text
//! reach[r][c] = mask[r][c] & (reach[up] | reach[down] | reach[left] | reach[right])
//! ```
//!
//! which the engine solves by monotone Gauss–Seidel sweeps (alternating
//! forward/backward over rows, with in-row carry passes both directions)
//! until nothing changes; the answer word is the union of the bottom
//! row's reach. Left→right king-move percolation — the planar-dual
//! evaluation of paper Fig. 5 — is the same computation transposed, with
//! the 8-neighbour adjacency and column 0 as the seed.
//!
//! Sweeps converge in `O(longest shortest path)` iterations (1–3 for
//! practically every lattice, including all synthesised ones) and each
//! sweep is a handful of AND/OR/shift-free word operations per site, so a
//! full truth table costs roughly `sites × sweeps` word-ops per 64
//! minterms — replacing 64 scalar BFS traversals, their visited-vector
//! allocations, and their per-site closure dispatch.
//!
//! # Lane unrolling and multi-core evaluation
//!
//! The percolation kernel is generic over a **lane count** `L`: lanes are
//! `[u64; L]` arrays moved through the same sweeps element-wise, so a
//! 4-lane pass percolates 256 minterms per grid traversal with the loop
//! control, bounds checks, and `changed` bookkeeping paid once — exactly
//! the u64x4-style unrolling `std::simd` would generate. Whole-table
//! entry points use 4-lane blocks and fall back to the 1-lane kernel for
//! the tail and for narrow tables (fewer than four words).
//!
//! On top of that, [`BitEvaluator::function`], [`dual_function`]
//! (word-parallel dual evaluation) and [`computes`] split their word
//! range into chunks evaluated on the [`nanoxbar_par`] work-stealing pool
//! with an independent scratch evaluator per task. Every word's value is
//! independent of the split, so results are **bit-identical for every
//! `NANOXBAR_THREADS` value** — proved by the property suite in
//! `tests/word_parallel_equivalence.rs`, which also proves both lane
//! kernels bit-identical to the scalar BFS evaluators retained in
//! [`crate::eval`].
//!
//! [`dual_function`]: BitEvaluator::dual_function
//! [`computes`]: BitEvaluator::computes

use std::sync::atomic::{AtomicBool, Ordering};

use nanoxbar_logic::{tail_mask, variable_word, word_len, TruthTable};
use nanoxbar_par as par;

use crate::lattice::{Lattice, Site};

/// Minimum table length (in words) before whole-table evaluation fans
/// out to the thread pool; below this the per-task overhead dominates.
const PAR_MIN_WORDS: usize = 16;

/// The 64-minterm on-mask of a site at word index `word` (the predicate
/// `site.is_on(m)` bit-sliced).
fn site_word(site: Site, word: usize) -> u64 {
    match site {
        Site::Literal(l) => {
            let base = variable_word(l.var(), word);
            if l.is_positive() {
                base
            } else {
                !base
            }
        }
        Site::Const(true) => u64::MAX,
        Site::Const(false) => 0,
    }
}

/// The on-mask of the *dual* predicate `!site.is_on(m ^ all_ones)`.
///
/// For a literal, complementing every input and then negating the result
/// cancels out (`!(x̄_v) = x_v`), so the mask equals the plain
/// [`site_word`]; a constant site must be complemented.
fn dual_site_word(site: Site, word: usize) -> u64 {
    match site {
        Site::Literal(_) => site_word(site, word),
        Site::Const(b) => site_word(Site::Const(!b), word),
    }
}

/// Which bit-sliced site predicate a percolation pass evaluates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MaskKind {
    /// `site.is_on(m)` — the computed function's switches.
    On,
    /// `!site.is_on(m ^ all)` — the Boolean-dual evaluation of
    /// [`crate::eval::eval_dual`].
    Dual,
}

/// Which percolation a pass runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Route {
    /// Top plate → bottom plate, 4-neighbour adjacency.
    TopBottom,
    /// Left plate → right plate, 8-neighbour king adjacency.
    LeftRightKing,
}

/// Lane-generic percolation scratch: each site carries `L` mask/reach
/// words, percolating `64·L` minterms per grid sweep.
#[derive(Clone, Debug, Default)]
struct Lanes<const L: usize> {
    /// Per-site on-masks for the words being evaluated (row-major).
    masks: Vec<[u64; L]>,
    /// Per-site reach words (row-major).
    reach: Vec<[u64; L]>,
}

impl<const L: usize> Lanes<L> {
    /// Fills `self.masks` for words `word0 .. word0 + L` under `kind`.
    fn fill_masks(&mut self, lattice: &Lattice, word0: usize, kind: MaskKind) {
        let (rows, cols) = (lattice.rows(), lattice.cols());
        self.masks.clear();
        self.masks.reserve(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let site = lattice.site(r, c);
                let mut m = [0u64; L];
                for (l, lane) in m.iter_mut().enumerate() {
                    *lane = match kind {
                        MaskKind::On => site_word(site, word0 + l),
                        MaskKind::Dual => dual_site_word(site, word0 + l),
                    };
                }
                self.masks.push(m);
            }
        }
    }

    /// Relaxes one interior row (4-neighbour adjacency); returns whether
    /// any reach word grew in any lane.
    fn relax_row_tb(&mut self, r: usize, rows: usize, cols: usize) -> bool {
        let base = r * cols;
        let mut changed = false;
        let mut carry = [0u64; L];
        for c in 0..cols {
            let m = self.masks[base + c];
            let up = self.reach[base - cols + c];
            let down = if r + 1 < rows {
                self.reach[base + cols + c]
            } else {
                [0u64; L]
            };
            let old = self.reach[base + c];
            let mut t = [0u64; L];
            let mut grew = false;
            for l in 0..L {
                t[l] = m[l] & (up[l] | down[l] | old[l] | carry[l]);
                grew |= t[l] != old[l];
            }
            if grew {
                self.reach[base + c] = t;
                changed = true;
            }
            carry = t;
        }
        let mut carry = [0u64; L];
        for c in (0..cols).rev() {
            let old = self.reach[base + c];
            let m = self.masks[base + c];
            let mut t = old;
            let mut grew = false;
            for l in 0..L {
                t[l] |= m[l] & carry[l];
                grew |= t[l] != old[l];
            }
            if grew {
                self.reach[base + c] = t;
                changed = true;
            }
            carry = t;
        }
        changed
    }

    /// Word-parallel top→bottom percolation over the masks currently in
    /// `self.masks`; returns the per-lane result words (unmasked).
    fn percolate_top_bottom(&mut self, rows: usize, cols: usize) -> [u64; L] {
        self.reach.clear();
        self.reach.extend_from_slice(&self.masks[..cols]);
        self.reach.resize(rows * cols, [0u64; L]);
        loop {
            let mut changed = false;
            for r in 1..rows {
                changed |= self.relax_row_tb(r, rows, cols);
            }
            for r in (1..rows).rev() {
                changed |= self.relax_row_tb(r, rows, cols);
            }
            if !changed {
                break;
            }
        }
        let bottom = (rows - 1) * cols;
        self.reach[bottom..bottom + cols]
            .iter()
            .fold([0u64; L], |mut acc, w| {
                for l in 0..L {
                    acc[l] |= w[l];
                }
                acc
            })
    }

    /// Relaxes one interior column (8-neighbour king adjacency); returns
    /// whether any reach word grew in any lane.
    fn relax_col_lr(&mut self, c: usize, rows: usize, cols: usize) -> bool {
        let mut changed = false;
        let mut carry = [0u64; L];
        for r in 0..rows {
            let idx = r * cols + c;
            let m = self.masks[idx];
            let mut gather = carry;
            for (g, &v) in gather.iter_mut().zip(&self.reach[idx]) {
                *g |= v;
            }
            // Left and right columns, rows r-1 ..= r+1 (king moves).
            for nr in r.saturating_sub(1)..=(r + 1).min(rows - 1) {
                let left = self.reach[nr * cols + c - 1];
                for l in 0..L {
                    gather[l] |= left[l];
                }
                if c + 1 < cols {
                    let right = self.reach[nr * cols + c + 1];
                    for l in 0..L {
                        gather[l] |= right[l];
                    }
                }
            }
            if r + 1 < rows {
                let below = self.reach[idx + cols];
                for l in 0..L {
                    gather[l] |= below[l];
                }
            }
            let old = self.reach[idx];
            let mut t = [0u64; L];
            let mut grew = false;
            for l in 0..L {
                t[l] = m[l] & gather[l];
                grew |= t[l] != old[l];
            }
            if grew {
                self.reach[idx] = t;
                changed = true;
            }
            carry = t;
        }
        let mut carry = [0u64; L];
        for r in (0..rows).rev() {
            let idx = r * cols + c;
            let old = self.reach[idx];
            let m = self.masks[idx];
            let mut t = old;
            let mut grew = false;
            for l in 0..L {
                t[l] |= m[l] & carry[l];
                grew |= t[l] != old[l];
            }
            if grew {
                self.reach[idx] = t;
                changed = true;
            }
            carry = t;
        }
        changed
    }

    /// Word-parallel left→right king-move percolation over the masks
    /// currently in `self.masks`; returns the per-lane result words
    /// (unmasked).
    fn percolate_left_right_king(&mut self, rows: usize, cols: usize) -> [u64; L] {
        self.reach.clear();
        self.reach.resize(rows * cols, [0u64; L]);
        for r in 0..rows {
            self.reach[r * cols] = self.masks[r * cols];
        }
        loop {
            let mut changed = false;
            for c in 1..cols {
                changed |= self.relax_col_lr(c, rows, cols);
            }
            for c in (1..cols).rev() {
                changed |= self.relax_col_lr(c, rows, cols);
            }
            if !changed {
                break;
            }
        }
        (0..rows).fold([0u64; L], |mut acc, r| {
            let w = self.reach[r * cols + cols - 1];
            for l in 0..L {
                acc[l] |= w[l];
            }
            acc
        })
    }

    /// One full percolation of words `word0 .. word0 + L`.
    fn run(&mut self, lattice: &Lattice, word0: usize, kind: MaskKind, route: Route) -> [u64; L] {
        self.fill_masks(lattice, word0, kind);
        let (rows, cols) = (lattice.rows(), lattice.cols());
        match route {
            Route::TopBottom => self.percolate_top_bottom(rows, cols),
            Route::LeftRightKing => self.percolate_left_right_king(rows, cols),
        }
    }
}

/// Reusable word-parallel evaluator.
///
/// Holds the per-site mask and reach scratch buffers (one set per lane
/// width) so that evaluating many words (a whole truth table, or many
/// lattices of similar size) performs no per-call allocation — the
/// buffers are resized once and reused. Whole-table evaluation spreads
/// word chunks across the [`nanoxbar_par`] pool (each task with its own
/// scratch), so one evaluator produces identical tables at every
/// `NANOXBAR_THREADS` setting.
///
/// # Examples
///
/// ```
/// use nanoxbar_lattice::{BitEvaluator, Lattice, Site};
/// use nanoxbar_logic::{parse_function, Literal};
///
/// let lit = |v: usize| Site::Literal(Literal::positive(v));
/// let lattice = Lattice::from_rows(2, vec![
///     vec![lit(0), Site::Literal(Literal::negative(1))],
///     vec![lit(1), Site::Literal(Literal::negative(0))],
/// ])?;
/// let f = parse_function("x0 x1 + !x0 !x1")?;
/// let mut eval = BitEvaluator::new();
/// assert_eq!(eval.function(&lattice), f);
/// assert!(eval.computes(&lattice, &f));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitEvaluator {
    /// 1-lane scratch (single-word calls, narrow tables, block tails).
    narrow: Lanes<1>,
    /// 4-lane scratch (unrolled whole-table blocks).
    wide: Lanes<4>,
}

impl BitEvaluator {
    /// A fresh evaluator with empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lattice's function on minterms `64*word .. 64*word + 63` as one
    /// packed word (top→bottom percolation; invalid tail bits cleared).
    pub fn top_bottom_word(&mut self, lattice: &Lattice, word: usize) -> u64 {
        self.narrow
            .run(lattice, word, MaskKind::On, Route::TopBottom)[0]
            & tail_mask(lattice.num_vars())
    }

    /// The left→right king-move percolation word over ON sites (the
    /// bit-sliced [`crate::eval::eval_left_right_king`]).
    pub fn left_right_king_word(&mut self, lattice: &Lattice, word: usize) -> u64 {
        self.narrow
            .run(lattice, word, MaskKind::On, Route::LeftRightKing)[0]
            & tail_mask(lattice.num_vars())
    }

    /// The Boolean dual `f^D` on one packed word (the bit-sliced
    /// [`crate::eval::eval_dual`]).
    pub fn dual_word(&mut self, lattice: &Lattice, word: usize) -> u64 {
        self.narrow
            .run(lattice, word, MaskKind::Dual, Route::LeftRightKing)[0]
            & tail_mask(lattice.num_vars())
    }

    /// Fills `out[i]` with the percolation word at index `word0 + i`,
    /// running 4-lane blocks and a 1-lane tail.
    fn eval_words(
        &mut self,
        lattice: &Lattice,
        kind: MaskKind,
        route: Route,
        word0: usize,
        out: &mut [u64],
    ) {
        let tm = tail_mask(lattice.num_vars());
        let mut blocks = out.chunks_exact_mut(4);
        let mut i = 0;
        for block in &mut blocks {
            let w = self.wide.run(lattice, word0 + i, kind, route);
            for (slot, lane) in block.iter_mut().zip(w) {
                *slot = lane & tm;
            }
            i += 4;
        }
        for slot in blocks.into_remainder() {
            *slot = self.narrow.run(lattice, word0 + i, kind, route)[0] & tm;
            i += 1;
        }
    }

    /// Whole-table evaluation: serial (with this evaluator's scratch) for
    /// narrow tables or a serial pool, chunked across the pool otherwise.
    fn table(&mut self, lattice: &Lattice, kind: MaskKind, route: Route) -> TruthTable {
        let n = lattice.num_vars();
        let wl = word_len(n);
        let mut words = vec![0u64; wl];
        if par::threads() > 1 && wl >= PAR_MIN_WORDS {
            // Multiple of 4 so only the final chunk can have a 1-lane tail.
            let chunk = par::chunk_len(wl, 4).next_multiple_of(4);
            par::par_chunks_mut(&mut words, chunk, |ci, out| {
                let mut scratch = BitEvaluator::new();
                scratch.eval_words(lattice, kind, route, ci * chunk, out);
            });
        } else {
            self.eval_words(lattice, kind, route, 0, &mut words);
        }
        TruthTable::from_words(n, words)
    }

    /// The complete truth table of the computed function, one percolation
    /// per 256 minterms (4-lane blocks), chunks spread across the pool.
    pub fn function(&mut self, lattice: &Lattice) -> TruthTable {
        self.table(lattice, MaskKind::On, Route::TopBottom)
    }

    /// The complete truth table of the dual function `f^D`.
    pub fn dual_function(&mut self, lattice: &Lattice) -> TruthTable {
        self.table(lattice, MaskKind::Dual, Route::LeftRightKing)
    }

    /// Compares blocks of evaluated words against `expect`, bailing out
    /// early on a mismatch or when `abort` is already set; returns whether
    /// the range matched.
    fn words_match(
        &mut self,
        lattice: &Lattice,
        word0: usize,
        expect: &[u64],
        abort: Option<&AtomicBool>,
    ) -> bool {
        let tm = tail_mask(lattice.num_vars());
        let mut blocks = expect.chunks_exact(4);
        let mut i = 0;
        for block in &mut blocks {
            if abort.is_some_and(|flag| flag.load(Ordering::Relaxed)) {
                return false;
            }
            let w = self
                .wide
                .run(lattice, word0 + i, MaskKind::On, Route::TopBottom);
            for (lane, &fw) in w.iter().zip(block) {
                if lane & tm != fw {
                    return false;
                }
            }
            i += 4;
        }
        for &fw in blocks.remainder() {
            let w = self
                .narrow
                .run(lattice, word0 + i, MaskKind::On, Route::TopBottom)[0];
            if w & tm != fw {
                return false;
            }
            i += 1;
        }
        true
    }

    /// True if the lattice computes exactly `f`, comparing word by word
    /// with early exit on the first mismatch (cooperative across pool
    /// tasks on wide tables).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn computes(&mut self, lattice: &Lattice, f: &TruthTable) -> bool {
        assert_eq!(lattice.num_vars(), f.num_vars(), "arity mismatch");
        let words = f.words();
        if par::threads() > 1 && words.len() >= PAR_MIN_WORDS {
            let mismatch = AtomicBool::new(false);
            // Multiple of 4 so only the final chunk can have a 1-lane tail.
            let chunk = par::chunk_len(words.len(), 4).next_multiple_of(4);
            par::par_chunks(words, chunk, |ci, expect| {
                let mut scratch = BitEvaluator::new();
                if !scratch.words_match(lattice, ci * chunk, expect, Some(&mismatch)) {
                    mismatch.store(true, Ordering::Relaxed);
                }
            });
            !mismatch.load(Ordering::Relaxed)
        } else {
            self.words_match(lattice, 0, words, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_dual, eval_left_right_king, eval_top_bottom};
    use nanoxbar_logic::Literal;

    /// Deterministic xorshift for structured-random grids.
    fn next(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn random_lattice(state: &mut u64, num_vars: usize) -> Lattice {
        let rows = 1 + (next(state) % 5) as usize;
        let cols = 1 + (next(state) % 5) as usize;
        let grid = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| match next(state) % 8 {
                        0 => Site::Const(false),
                        1 => Site::Const(true),
                        s => Site::Literal(Literal::new(
                            (next(state) % num_vars as u64) as usize,
                            s & 1 == 0,
                        )),
                    })
                    .collect()
            })
            .collect();
        Lattice::from_rows(num_vars, grid).unwrap()
    }

    #[test]
    fn site_words_match_scalar_is_on() {
        let sites = [
            Site::Const(false),
            Site::Const(true),
            Site::Literal(Literal::positive(0)),
            Site::Literal(Literal::negative(3)),
            Site::Literal(Literal::positive(7)),
            Site::Literal(Literal::negative(8)),
        ];
        for site in sites {
            for w in 0..word_len(9) {
                let mask = site_word(site, w);
                let dual = dual_site_word(site, w);
                for bit in 0..64 {
                    let m = (w as u64) * 64 + bit;
                    assert_eq!((mask >> bit) & 1 == 1, site.is_on(m), "{site:?} m={m}");
                    let all = (1u64 << 9) - 1;
                    assert_eq!(
                        (dual >> bit) & 1 == 1,
                        !site.is_on(m ^ all),
                        "{site:?} m={m}"
                    );
                }
            }
        }
    }

    #[test]
    fn word_engine_matches_scalar_bfs_on_random_grids() {
        let mut state = 0xD1CE_D00Du64;
        let mut eval = BitEvaluator::new();
        for round in 0..60 {
            // Cross the 6-variable word boundary in both directions.
            let n = 1 + (round % 8);
            let l = random_lattice(&mut state, n);
            let scalar_tb = TruthTable::from_fn(n, |m| eval_top_bottom(&l, m));
            let scalar_lr = TruthTable::from_fn(n, |m| eval_left_right_king(&l, m));
            let scalar_dual = TruthTable::from_fn(n, |m| eval_dual(&l, m));
            assert_eq!(eval.function(&l), scalar_tb, "tb mismatch on\n{l}");
            let lr_words: Vec<u64> = (0..word_len(n))
                .map(|w| eval.left_right_king_word(&l, w))
                .collect();
            assert_eq!(
                TruthTable::from_words(n, lr_words),
                scalar_lr,
                "lr mismatch on\n{l}"
            );
            assert_eq!(eval.dual_function(&l), scalar_dual, "dual mismatch on\n{l}");
            assert!(eval.computes(&l, &scalar_tb));
            assert!(!eval.computes(&l, &scalar_tb.not()) || scalar_tb == scalar_tb.not());
        }
    }

    #[test]
    fn four_lane_blocks_match_single_lane_words() {
        // 10-var lattices have 16 words: the whole-table path runs 4-lane
        // blocks which must agree with the public single-word entry point.
        let mut state = 0xC0FF_EE00u64;
        let mut eval = BitEvaluator::new();
        for _ in 0..20 {
            let l = random_lattice(&mut state, 10);
            let table = eval.function(&l);
            for w in 0..word_len(10) {
                assert_eq!(table.words()[w], eval.top_bottom_word(&l, w), "word {w}");
            }
            let dual = eval.dual_function(&l);
            for w in 0..word_len(10) {
                assert_eq!(dual.words()[w], eval.dual_word(&l, w), "dual word {w}");
            }
        }
    }

    #[test]
    fn snake_paths_converge() {
        // A serpentine single path exercises many sweep iterations: the
        // path runs right along row 0, down, left along row 2, down,
        // right along row 4...
        let n = 1;
        let on = Site::Const(true);
        let off = Site::Const(false);
        let rows = 9;
        let cols = 7;
        let grid: Vec<Vec<Site>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| {
                        if r % 2 == 0 {
                            on
                        } else if (r / 2) % 2 == 0 {
                            if c == cols - 1 {
                                on
                            } else {
                                off
                            }
                        } else if c == 0 {
                            on
                        } else {
                            off
                        }
                    })
                    .collect()
            })
            .collect();
        let l = Lattice::from_rows(n, grid).unwrap();
        let mut eval = BitEvaluator::new();
        assert_eq!(
            eval.function(&l),
            TruthTable::from_fn(n, |m| eval_top_bottom(&l, m))
        );
    }

    #[test]
    fn single_row_and_column_edge_cases() {
        let mut eval = BitEvaluator::new();
        let l = Lattice::from_rows(
            7,
            vec![vec![
                Site::Literal(Literal::positive(6)),
                Site::Literal(Literal::positive(0)),
            ]],
        )
        .unwrap();
        assert_eq!(
            eval.function(&l),
            TruthTable::from_fn(7, |m| eval_top_bottom(&l, m))
        );
        let col = Lattice::from_rows(
            7,
            vec![
                vec![Site::Literal(Literal::positive(6))],
                vec![Site::Literal(Literal::negative(1))],
            ],
        )
        .unwrap();
        assert_eq!(
            eval.function(&col),
            TruthTable::from_fn(7, |m| eval_top_bottom(&col, m))
        );
        assert_eq!(
            eval.dual_function(&col),
            TruthTable::from_fn(7, |m| eval_dual(&col, m))
        );
    }
}
