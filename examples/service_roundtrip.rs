//! In-process tour of the HTTP synthesis service: start a server on an
//! ephemeral port, speak HTTP/1.1 to it over a plain `TcpStream`, and
//! read the cache counters back out of `/metrics`.
//!
//! Run with: `cargo run --example service_roundtrip`

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

use nanoxbar::service::{Json, Server, ServiceConfig};

/// Sends one request and returns `(status, body)` — a deliberately tiny
/// HTTP client; real deployments would sit curl or a proxy in front.
fn exchange(addr: &str, request: &str) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(request.as_bytes())?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let mut length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(value) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            length = value.trim().parse().unwrap_or(0);
        }
    }
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    Ok((status, String::from_utf8_lossy(&body).into_owned()))
}

fn post(addr: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
    exchange(
        addr,
        &format!(
            "POST {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\n\
             connection: close\r\n\r\n{body}",
            body.len()
        ),
    )
}

fn get(addr: &str, path: &str) -> std::io::Result<(u16, String)> {
    exchange(
        addr,
        &format!("GET {path} HTTP/1.1\r\nhost: {addr}\r\nconnection: close\r\n\r\n"),
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Ephemeral port, small worker pool: everything in this process.
    let server = Server::bind(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServiceConfig::default()
    })?;
    let handle = server.start()?;
    let addr = handle.addr().to_string();
    println!("serving on http://{addr}\n");

    let (status, body) = get(&addr, "/healthz")?;
    println!("GET /healthz -> {status}\n  {body}\n");

    // One job, synthesised and verified. The same request again is served
    // from the content-addressed cache — byte-identical body.
    let request = "{\"expr\":\"x0 x1 + !x0 !x1\",\"strategy\":\"diode\",\"verify\":true}";
    let (status, first) = post(&addr, "/v1/synthesize", request)?;
    println!("POST /v1/synthesize -> {status}\n  {first}");
    let (_, second) = post(&addr, "/v1/synthesize", request)?;
    println!("  cached replay is bit-identical: {}\n", first == second);

    // A batch: ordered slots, per-slot isolation (the constant function
    // fails its slot without touching the others), intra-batch dedupe
    // (slots 0 and 3 share one synthesis — same fingerprint).
    let batch = "{\"jobs\":[\
                 {\"expr\":\"x0 x1 + x1 x2\",\"label\":\"first\"},\
                 {\"expr\":\"x0 + !x0\",\"strategy\":\"diode\"},\
                 {\"expr\":\"x0 ^ x1\",\"chip\":{\"rows\":16,\"cols\":16,\"seed\":5}},\
                 {\"expr\":\"x0 x1 + x1 x2\",\"label\":\"dup-of-first\"}]}";
    let (status, body) = post(&addr, "/v1/batch", batch)?;
    println!("POST /v1/batch -> {status}");
    let json = Json::parse(&body)?;
    for (i, slot) in json
        .get("results")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .enumerate()
    {
        println!("  slot {i}: {slot}");
    }

    let (_, metrics) = get(&addr, "/metrics")?;
    println!("\nGET /metrics (cache + pool excerpts):");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("nanoxbar_cache") || l.starts_with("nanoxbar_pool"))
    {
        println!("  {line}");
    }

    handle.shutdown();
    println!("\nserver stopped.");
    Ok(())
}
