//! Conflict-driven clause-learning SAT solver.
//!
//! A compact but genuine CDCL engine in the MiniSat lineage: two-watched-
//! literal propagation, first-UIP conflict analysis with clause learning,
//! VSIDS-style variable activities with phase saving, Luby-sequence
//! restarts, periodic learnt-clause reduction, and incremental solving
//! under assumptions. It exists because the optimal lattice synthesis of
//! Gange et al. (paper ref \[9\]) — reproduced in `nanoxbar-lattice` — needs
//! a SAT back-end, and the workspace builds all substrates from scratch.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::cnf::Cnf;
use crate::lit::{LBool, Lit, Var};

/// Outcome of a [`Solver::solve`] call.
#[derive(Clone, Debug, PartialEq)]
pub enum SolveResult {
    /// Satisfiable, with a complete model indexed by variable.
    Sat(Vec<bool>),
    /// Proven unsatisfiable (under the given assumptions, if any).
    Unsat,
    /// The conflict budget of [`Solver::solve_limited`] ran out before a
    /// verdict was reached. The solver remains usable (learnt clauses are
    /// kept, so a retry resumes from accumulated knowledge).
    Unknown,
}

impl SolveResult {
    /// True if satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&[bool]> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat | SolveResult::Unknown => None,
        }
    }
}

/// Runtime counters, exposed for the benchmark harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolverStats {
    /// Conflicts encountered.
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently retained.
    pub learnt_clauses: usize,
}

#[derive(Clone, Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
}

type ClauseRef = usize;

/// Max-heap entry for VSIDS decisions (lazy: stale activities tolerated).
#[derive(PartialEq, Debug)]
struct HeapEntry {
    activity: f64,
    var: Var,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        self.activity
            .partial_cmp(&other.activity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.var.index().cmp(&other.var.index()))
    }
}

/// A CDCL SAT solver.
///
/// # Examples
///
/// ```
/// use nanoxbar_sat::{Solver, SolveResult};
///
/// let mut s = Solver::new();
/// let a = s.new_var().positive();
/// let b = s.new_var().positive();
/// s.add_clause([a, b]);
/// s.add_clause([!a, b]);
/// s.add_clause([!b, a]);
/// match s.solve() {
///     SolveResult::Sat(model) => {
///         assert!(model[0] && model[1]);
///     }
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// `watches[lit.code()]`: clauses to inspect when `lit` becomes true
    /// (they watch `!lit`).
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<LBool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: BinaryHeap<HeapEntry>,
    phase: Vec<bool>,
    seen: Vec<bool>,
    ok: bool,
    stats: SolverStats,
    max_learnts: usize,
}

const VAR_DECAY: f64 = 1.0 / 0.95;
const CLA_DECAY: f64 = 1.0 / 0.999;
const RESCALE_LIMIT: f64 = 1e100;
const RESTART_BASE: u64 = 100;

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// An empty solver with no variables.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: BinaryHeap::new(),
            phase: Vec::new(),
            seen: Vec::new(),
            ok: true,
            stats: SolverStats::default(),
            max_learnts: 4000,
        }
    }

    /// Loads every clause of a [`Cnf`].
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new();
        while s.num_vars() < cnf.num_vars() {
            s.new_var();
        }
        for c in cnf.clauses() {
            s.add_clause(c.iter().copied());
        }
        s
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::new(self.assign.len());
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.push(HeapEntry {
            activity: 0.0,
            var: v,
        });
        v
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Runtime counters.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.clauses.iter().filter(|c| c.learnt).count();
        s
    }

    fn value_lit(&self, l: Lit) -> LBool {
        let v = self.assign[l.var().index()];
        if l.is_positive() {
            v
        } else {
            v.negate()
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unrecoverable (top-level) conflict after this clause.
    ///
    /// # Panics
    ///
    /// Panics if called while a solve left decisions on the trail (the
    /// public entry points always restore level 0) or if a literal's
    /// variable was not allocated via [`Solver::new_var`].
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        assert_eq!(self.decision_level(), 0, "clauses must be added at level 0");
        if !self.ok {
            return false;
        }
        let mut clause: Vec<Lit> = lits.into_iter().collect();
        for l in &clause {
            assert!(
                l.var().index() < self.num_vars(),
                "unallocated variable {}",
                l.var()
            );
        }
        clause.sort();
        clause.dedup();
        // Tautology?
        if clause.windows(2).any(|w| w[0] == !w[1]) {
            return true;
        }
        // Remove literals already false at level 0; satisfied clause is a no-op.
        clause.retain(|&l| self.value_lit(l) != LBool::False);
        if clause.iter().any(|&l| self.value_lit(l) == LBool::True) {
            return true;
        }
        match clause.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(clause[0], None);
                self.ok = self.propagate().is_none();
                self.ok
            }
            _ => {
                self.attach(clause, false);
                true
            }
        }
    }

    fn attach(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        self.watches[(!lits[0]).code()].push(cref);
        self.watches[(!lits[1]).code()].push(cref);
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
        });
        cref
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var().index();
        self.assign[v] = LBool::from_bool(l.is_positive());
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = l.is_positive();
        self.trail.push(l);
    }

    /// Unit propagation; returns the conflicting clause, if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut i = 0;
            while i < ws.len() {
                let cref = ws[i];
                // Make sure the falsified literal (!p) sits at position 1.
                let first = {
                    let clause = &mut self.clauses[cref];
                    if clause.lits[0] == !p {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], !p);
                    clause.lits[0]
                };

                if self.value_lit(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a replacement watch.
                let replacement = {
                    let clause = &self.clauses[cref];
                    (2..clause.lits.len()).find(|&k| self.value_lit(clause.lits[k]) != LBool::False)
                };
                if let Some(k) = replacement {
                    let clause = &mut self.clauses[cref];
                    clause.lits.swap(1, k);
                    let new_watch = !clause.lits[1];
                    self.watches[new_watch.code()].push(cref);
                    ws.swap_remove(i);
                    continue;
                }
                // Clause is unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    // Conflict: restore the remaining watchers before returning.
                    self.watches[p.code()].append(&mut ws);
                    return Some(cref);
                }
                self.enqueue(first, Some(cref));
                i += 1;
            }
            self.watches[p.code()] = ws;
        }
        None
    }

    fn bump_var(&mut self, v: Var) {
        let a = &mut self.activity[v.index()];
        *a += self.var_inc;
        if *a > RESCALE_LIMIT {
            for act in &mut self.activity {
                *act *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let activity = self.activity[v.index()];
        self.order.push(HeapEntry { activity, var: v });
    }

    fn bump_clause(&mut self, cref: ClauseRef) {
        let c = &mut self.clauses[cref];
        c.activity += self.cla_inc;
        if c.activity > RESCALE_LIMIT {
            for cl in &mut self.clauses {
                cl.activity *= 1e-100;
            }
            self.cla_inc *= 1e-100;
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = confl;
        let mut index = self.trail.len();

        loop {
            self.bump_clause(confl);
            let lits: Vec<Lit> = self.clauses[confl].lits.clone();
            for &q in &lits {
                // Skip the pivot literal itself (it is being resolved away;
                // a reason clause contains the pivot positively at lits[0]).
                if let Some(piv) = p {
                    if q.var() == piv.var() {
                        continue;
                    }
                }
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Select the next literal of the current level to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let pivot = self.trail[index];
            self.seen[pivot.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(pivot);
                break;
            }
            confl =
                self.reason[pivot.var().index()].expect("non-decision literal must have a reason");
            p = Some(pivot);
        }

        let asserting = !p.expect("analysis always finds a UIP");
        let mut clause = Vec::with_capacity(learnt.len() + 1);
        clause.push(asserting);
        clause.extend(learnt.iter().copied());

        // Clean up `seen` for the remaining marked literals.
        for l in &clause[1..] {
            self.seen[l.var().index()] = false;
        }

        // Backtrack level: highest level among the non-asserting literals.
        let back_level = clause[1..]
            .iter()
            .map(|l| self.level[l.var().index()])
            .max()
            .unwrap_or(0);

        // Put a literal of the backtrack level at index 1 (watch invariant).
        if clause.len() > 2 {
            let pos = clause[1..]
                .iter()
                .position(|l| self.level[l.var().index()] == back_level)
                .expect("some literal has the backtrack level")
                + 1;
            clause.swap(1, pos);
        }
        (clause, back_level)
    }

    fn backtrack_to(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("limits match levels");
            while self.trail.len() > lim {
                let l = self.trail.pop().expect("trail non-empty above limit");
                let v = l.var().index();
                self.assign[v] = LBool::Undef;
                self.reason[v] = None;
                let activity = self.activity[v];
                self.order.push(HeapEntry {
                    activity,
                    var: l.var(),
                });
            }
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        while let Some(entry) = self.order.pop() {
            let v = entry.var;
            if self.assign[v.index()] == LBool::Undef {
                return Some(v);
            }
        }
        None
    }

    /// Reduces the learnt clause database, keeping the most active half.
    fn reduce_learnts(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&i| {
                self.clauses[i].learnt && !self.is_reason(i) && self.clauses[i].lits.len() > 2
            })
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            self.clauses[a]
                .activity
                .partial_cmp(&self.clauses[b].activity)
                .unwrap_or(Ordering::Equal)
        });
        let remove: std::collections::HashSet<ClauseRef> = learnt_refs[..learnt_refs.len() / 2]
            .iter()
            .copied()
            .collect();
        if remove.is_empty() {
            return;
        }
        // Rebuild clause storage and watches.
        let old = std::mem::take(&mut self.clauses);
        for w in &mut self.watches {
            w.clear();
        }
        let mut remap: Vec<Option<ClauseRef>> = vec![None; old.len()];
        for (i, clause) in old.into_iter().enumerate() {
            if remove.contains(&i) {
                continue;
            }
            let cref = self.clauses.len();
            remap[i] = Some(cref);
            self.watches[(!clause.lits[0]).code()].push(cref);
            self.watches[(!clause.lits[1]).code()].push(cref);
            self.clauses.push(clause);
        }
        for r in &mut self.reason {
            *r = r.and_then(|old_ref| remap[old_ref]);
        }
    }

    fn is_reason(&self, cref: ClauseRef) -> bool {
        self.reason.contains(&Some(cref))
    }

    /// Solves the formula.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumptions (literals forced true for this
    /// call only). The solver can be reused afterwards.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions, None);
        self.backtrack_to(0);
        result
    }

    /// Solves with a conflict budget: gives up with [`SolveResult::Unknown`]
    /// once `max_conflicts` conflicts have been analysed in this call.
    /// Learnt clauses survive, so callers may retry with a larger budget and
    /// resume from the accumulated knowledge.
    pub fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> SolveResult {
        if !self.ok {
            return SolveResult::Unsat;
        }
        let result = self.search(assumptions, Some(max_conflicts));
        self.backtrack_to(0);
        result
    }

    fn search(&mut self, assumptions: &[Lit], max_conflicts: Option<u64>) -> SolveResult {
        let mut conflicts_since_restart = 0u64;
        let mut conflicts_this_call = 0u64;
        let mut restart_number = 0u32;
        let mut restart_limit = RESTART_BASE * luby(restart_number);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                conflicts_this_call += 1;
                if self.decision_level() == 0 {
                    // Conflict with no decisions: globally unsatisfiable.
                    self.ok = false;
                    return SolveResult::Unsat;
                }
                if (self.decision_level() as usize) <= assumptions.len() {
                    // Conflict while only assumptions are on the trail:
                    // unsatisfiable under these assumptions (the solver
                    // itself remains usable).
                    return SolveResult::Unsat;
                }
                if max_conflicts.is_some_and(|budget| conflicts_this_call > budget) {
                    return SolveResult::Unknown;
                }
                let (clause, back_level) = self.analyze(confl);
                self.backtrack_to(back_level);
                let asserting = clause[0];
                if clause.len() == 1 {
                    if self.value_lit(asserting) == LBool::Undef {
                        self.enqueue(asserting, None);
                    }
                } else {
                    let cref = self.attach(clause, true);
                    self.bump_clause(cref);
                    self.enqueue(asserting, Some(cref));
                }
                self.var_inc *= VAR_DECAY;
                self.cla_inc *= CLA_DECAY;
            } else {
                // No conflict: maybe restart / reduce, then decide.
                if conflicts_since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    restart_number += 1;
                    restart_limit = RESTART_BASE * luby(restart_number);
                    conflicts_since_restart = 0;
                    self.backtrack_to(0);
                    continue;
                }
                let learnt_count = self.clauses.iter().filter(|c| c.learnt).count();
                if learnt_count > self.max_learnts && self.decision_level() == 0 {
                    self.reduce_learnts();
                }

                // Place pending assumptions as pseudo-decisions.
                let lvl = self.decision_level() as usize;
                if lvl < assumptions.len() {
                    let a = assumptions[lvl];
                    match self.value_lit(a) {
                        LBool::True => {
                            // Already implied: open an empty decision level
                            // so the level/assumption indexing stays aligned.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => return SolveResult::Unsat,
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(a, None);
                        }
                    }
                    continue;
                }

                match self.pick_branch_var() {
                    None => {
                        let model = self.assign.iter().map(|&v| v == LBool::True).collect();
                        return SolveResult::Sat(model);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v.index()];
                        self.enqueue(Lit::new(v, phase), None);
                    }
                }
            }
        }
    }
}

/// The Luby restart sequence (1,1,2,1,1,2,4,…), 0-indexed.
fn luby(i: u32) -> u64 {
    let mut x = i as u64 + 1; // work 1-indexed
    loop {
        // Smallest k with 2^k - 1 >= x.
        let mut k = 1u32;
        while ((1u64 << k) - 1) < x {
            k += 1;
        }
        if (1u64 << k) - 1 == x {
            return 1u64 << (k - 1);
        }
        x -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(solver: &mut Solver, n: usize) -> Vec<Lit> {
        (0..n).map(|_| solver.new_var().positive()).collect()
    }

    #[test]
    fn trivial_sat_and_unsat() {
        let mut s = Solver::new();
        let v = lits(&mut s, 1);
        assert!(s.add_clause([v[0]]));
        assert!(s.solve().is_sat());
        assert!(!s.add_clause([!v[0]]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        let mut s = Solver::new();
        let v = lits(&mut s, 5);
        s.add_clause([v[0]]);
        for i in 0..4 {
            s.add_clause([!v[i], v[i + 1]]);
        }
        match s.solve() {
            SolveResult::Sat(m) => assert!(m.iter().all(|&b| b)),
            other => panic!("chain is satisfiable, got {other:?}"),
        }
    }

    #[test]
    fn model_satisfies_formula() {
        // Random 3-SAT near the easy region; check models against the CNF.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for trial in 0..30 {
            let n = 12;
            let m = 30 + (trial % 20);
            let mut cnf = Cnf::new();
            let vars = cnf.fresh_vars(n);
            for _ in 0..m {
                let mut clause = Vec::new();
                for _ in 0..3 {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    let v = vars[(state % n as u64) as usize];
                    clause.push(Lit::new(v, state & (1 << 20) != 0));
                }
                cnf.add_clause(clause);
            }
            let mut s = Solver::from_cnf(&cnf);
            if let SolveResult::Sat(model) = s.solve() {
                assert!(cnf.eval(&model), "model must satisfy the formula");
            }
        }
    }

    #[test]
    fn agrees_with_brute_force() {
        let mut state = 0xCAFEBABE1337u64;
        for _ in 0..60 {
            let n = 6;
            let mut cnf = Cnf::new();
            let vars = cnf.fresh_vars(n);
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let clause_count = 3 + (state % 16) as usize;
            for _ in 0..clause_count {
                let mut clause = Vec::new();
                let width = 1 + (state % 3) as usize;
                for _ in 0..width {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    clause.push(Lit::new(vars[(state % n as u64) as usize], state & 2 != 0));
                }
                cnf.add_clause(clause);
            }
            let brute_sat = (0..(1u32 << n)).any(|m| {
                let a: Vec<bool> = (0..n).map(|i| (m >> i) & 1 == 1).collect();
                cnf.eval(&a)
            });
            let mut s = Solver::from_cnf(&cnf);
            assert_eq!(s.solve().is_sat(), brute_sat, "cnf: {}", cnf.to_dimacs());
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)] // pairwise indexing is clearest here
    fn pigeonhole_4_into_3_is_unsat() {
        // PHP(4,3): classic hard-ish UNSAT instance exercising learning.
        let pigeons = 4;
        let holes = 3;
        let mut s = Solver::new();
        let mut x = vec![vec![]; pigeons];
        for p in x.iter_mut() {
            for _ in 0..holes {
                p.push(s.new_var().positive());
            }
        }
        for row in &x {
            s.add_clause(row.clone());
        }
        for h in 0..holes {
            for p1 in 0..pigeons {
                for p2 in (p1 + 1)..pigeons {
                    s.add_clause([!x[p1][h], !x[p2][h]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let v = lits(&mut s, 2);
        s.add_clause([v[0], v[1]]);
        // Assume !a and !b: unsat.
        assert_eq!(
            s.solve_with_assumptions(&[!v[0], !v[1]]),
            SolveResult::Unsat
        );
        // Without assumptions the formula is still satisfiable.
        assert!(s.solve().is_sat());
        // Assume only !a: b must hold.
        match s.solve_with_assumptions(&[!v[0]]) {
            SolveResult::Sat(m) => {
                assert!(!m[0]);
                assert!(m[1]);
            }
            other => panic!("satisfiable under !a, got {other:?}"),
        }
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        s.add_clause([v[0], v[1], v[2]]);
        assert!(s.solve().is_sat());
        s.add_clause([!v[0]]);
        s.add_clause([!v[1]]);
        match s.solve() {
            SolveResult::Sat(m) => assert!(m[2]),
            other => panic!("still satisfiable, got {other:?}"),
        }
        s.add_clause([!v[2]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u32).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn xor_chain_unsat() {
        // x1 ^ x2 = 1, x2 ^ x3 = 1, x1 ^ x3 = 1 is unsatisfiable.
        let mut s = Solver::new();
        let v = lits(&mut s, 3);
        let xor_clauses = |s: &mut Solver, a: Lit, b: Lit| {
            s.add_clause([a, b]);
            s.add_clause([!a, !b]);
        };
        xor_clauses(&mut s, v[0], v[1]);
        xor_clauses(&mut s, v[1], v[2]);
        xor_clauses(&mut s, v[0], v[2]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    /// A pigeonhole instance PHP(n+1, n): n+1 pigeons in n holes, famously
    /// hard for resolution — guaranteed to burn conflicts.
    fn pigeonhole(s: &mut Solver, holes: usize) -> Vec<Vec<Lit>> {
        let pigeons = holes + 1;
        let p: Vec<Vec<Lit>> = (0..pigeons).map(|_| lits(s, holes)).collect();
        for row in &p {
            s.add_clause(row.iter().copied());
        }
        for (i, row_i) in p.iter().enumerate() {
            for row_j in &p[i + 1..] {
                for (&a, &b) in row_i.iter().zip(row_j) {
                    s.add_clause([!a, !b]);
                }
            }
        }
        p
    }

    #[test]
    fn budgeted_solve_gives_up_then_resumes() {
        let mut s = Solver::new();
        pigeonhole(&mut s, 7);
        // A tiny budget cannot refute PHP(8, 7).
        assert_eq!(s.solve_limited(&[], 5), SolveResult::Unknown);
        // The solver stays usable: the unbudgeted call still refutes it.
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn budgeted_solve_matches_unbudgeted_on_easy_instances() {
        let mut s = Solver::new();
        let v = lits(&mut s, 4);
        s.add_clause([v[0], v[1]]);
        s.add_clause([!v[0], v[2]]);
        s.add_clause([!v[2], v[3]]);
        assert!(s.solve_limited(&[], 1_000_000).is_sat());
        // A definitive root-level refutation beats the budget even at 0.
        s.add_clause([!v[3]]);
        s.add_clause([!v[1]]);
        assert_eq!(s.solve_limited(&[], 0), SolveResult::Unsat);
    }
}
