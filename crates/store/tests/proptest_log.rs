//! Fault-injection property suite for the append-only log.
//!
//! The contract under test is the durability story the service builds
//! on: **whatever IO faults strike — torn writes at any byte, short
//! writes, out-of-space, failed fsync — replaying the surviving bytes
//! always yields a valid prefix of the appended record sequence**,
//! never a corrupted, reordered, or partial record.

use proptest::collection::vec;
use proptest::prelude::*;

use nanoxbar_store::log::{frame, open_log, replay, LogWriter, HEADER_LEN};
use nanoxbar_store::vfs::{FaultPlan, MemVfs, Vfs};

/// Asserts `got` is a prefix of `want` (payloads only, in order).
fn assert_prefix(got: &[(u32, Vec<u8>)], want: &[Vec<u8>]) {
    assert!(
        got.len() <= want.len(),
        "recovered {} records from {} appended",
        got.len(),
        want.len()
    );
    for (i, (_, payload)) in got.iter().enumerate() {
        assert_eq!(*payload, want[i], "record {i} differs after recovery");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Pure replay: cut the encoded byte stream at an arbitrary point
    /// (a crash exactly there) and recover.
    #[test]
    fn crash_at_any_byte_recovers_a_valid_prefix(
        records in vec(vec(any::<u8>(), 0..40), 1..12),
        cut_sel in any::<u64>(),
    ) {
        let bytes: Vec<u8> = records.iter().flat_map(|p| frame(0, p)).collect();
        let cut = (cut_sel % (bytes.len() as u64 + 1)) as usize;
        let replayed = replay(&bytes[..cut]);
        assert_prefix(&replayed.records, &records);
        // Accounting adds up: valid prefix + truncated tail == cut.
        prop_assert_eq!(
            replayed.stats.valid_bytes + replayed.stats.bytes_truncated,
            cut as u64
        );
        // Whole frames survive whole: the number of recovered records
        // is exactly the number of complete frames before the cut.
        let mut complete = 0usize;
        let mut offset = 0usize;
        for p in &records {
            offset += HEADER_LEN + p.len();
            if offset <= cut {
                complete += 1;
            } else {
                break;
            }
        }
        prop_assert_eq!(replayed.records.len(), complete);
    }

    /// End-to-end through the vfs: a scripted crash drops every byte
    /// past N, then a "restarted" process opens the log.
    #[test]
    fn torn_vfs_writes_recover_and_resume(
        records in vec(vec(any::<u8>(), 0..32), 1..10),
        crash_sel in any::<u64>(),
        short_sel in any::<u64>(),
    ) {
        let total: u64 = records.iter().map(|p| (HEADER_LEN + p.len()) as u64).sum();
        let crash = crash_sel % (total + 1);
        let vfs = MemVfs::with_plan(FaultPlan {
            crash_at_byte: Some(crash),
            short_write_limit: if short_sel & 1 == 0 { Some(1 + (short_sel % 7) as usize) } else { None },
            ..FaultPlan::default()
        });
        {
            let mut writer = LogWriter::new(vfs.open_append("wal").expect("open"), 0);
            for p in &records {
                writer.append(p).expect("crash loss is silent, appends succeed");
            }
        }

        // "Restart": clear the fault plan and recover.
        vfs.set_plan(FaultPlan::default());
        let opened = open_log(&vfs, "wal").expect("open after crash");
        assert_prefix(&opened.records, &records);
        let recovered = opened.records.len();
        prop_assert!(recovered <= records.len());

        // The recovered log must accept appends and stay intact.
        let mut writer = opened.writer;
        writer.append(b"post-crash").expect("append after recovery");
        writer.sync().expect("sync after recovery");
        let reopened = open_log(&vfs, "wal").expect("reopen");
        prop_assert_eq!(reopened.stats.records_replayed as usize, recovered + 1);
        prop_assert_eq!(reopened.stats.bytes_truncated, 0);
        prop_assert_eq!(&reopened.records[recovered].1, &b"post-crash".to_vec());
    }

    /// Out-of-space mid-stream: appends start failing, the writer
    /// poisons itself on torn frames, and what was written stays a
    /// valid prefix.
    #[test]
    fn enospc_leaves_a_valid_prefix(
        records in vec(vec(any::<u8>(), 0..32), 1..10),
        budget_sel in any::<u64>(),
    ) {
        let total: u64 = records.iter().map(|p| (HEADER_LEN + p.len()) as u64).sum();
        let budget = budget_sel % (total + 1);
        let vfs = MemVfs::with_plan(FaultPlan {
            fail_after_bytes: Some(budget),
            ..FaultPlan::default()
        });
        let mut writer = LogWriter::new(vfs.open_append("wal").expect("open"), 0);
        let mut appended = 0usize;
        for p in &records {
            match writer.append(p) {
                Ok(()) => appended += 1,
                Err(_) => break,
            }
        }
        let replayed = replay(&vfs.contents("wal"));
        prop_assert_eq!(replayed.stats.records_replayed as usize, appended);
        assert_prefix(&replayed.records, &records);
    }
}
