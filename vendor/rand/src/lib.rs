//! Offline stand-in for the subset of the `rand` crate API this workspace
//! uses.
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched. This vendored crate re-implements exactly the
//! surface the workspace consumes — [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`] — on top of a single [`RngCore::next_u64`]
//! entry point. Seeded streams are fully deterministic, which is all the
//! simulation and test code relies on; no cryptographic or
//! cross-version-stability guarantees are made.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Standard-distribution sampling for a value type (the stand-in for
/// `rand::distributions::Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

/// Gaussian sampling, blanket-implemented for every [`RngCore`] — the
/// stand-in for `rand_distr`'s `StandardNormal`. Box–Muller over the
/// uniform draws of [`Standard`], so streams keep the same seeded
/// determinism contract as every other sampler here: a fixed seed yields
/// a fixed sequence for every thread count and build.
pub trait NormalRng: RngCore {
    /// One standard-normal `f64` (Box–Muller; consumes two uniforms).
    fn gen_normal_f64(&mut self) -> f64
    where
        Self: Sized,
    {
        // u1 in (0, 1]: flip the half-open uniform so ln never sees 0.
        let u1 = 1.0 - f64::sample(self);
        let u2 = f64::sample(self);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// One standard-normal `f32` (the `f64` draw, rounded once).
    fn gen_normal_f32(&mut self) -> f32
    where
        Self: Sized,
    {
        self.gen_normal_f64() as f32
    }
}

impl<R: RngCore + ?Sized> NormalRng for R {}

/// A range that can be sampled uniformly (the stand-in for
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Uniform `u64` below `n` by rejection-free multiply-shift; the modulo
/// bias for the simulation-sized ranges used here is negligible, but the
/// widening multiply avoids it anyway for n << 2^64.
fn below(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from an empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Sequence-related helpers (the stand-in for `rand::seq`).
pub mod seq {
    use super::RngCore;

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5usize..9);
            assert!((5..9).contains(&v));
            let w = rng.gen_range(0u64..1);
            assert_eq!(w, 0);
        }
    }

    #[test]
    fn gaussian_is_deterministic_and_standard() {
        let mut a = Counter(21);
        let mut b = Counter(21);
        for _ in 0..100 {
            assert_eq!(a.gen_normal_f32(), b.gen_normal_f32());
        }
        let mut rng = Counter(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gen_normal_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
        // The f32 variant is the f64 draw rounded once, so both streams
        // describe the same underlying sequence.
        let mut wide = Counter(9);
        let mut narrow = Counter(9);
        for _ in 0..100 {
            assert_eq!(wide.gen_normal_f64() as f32, narrow.gen_normal_f32());
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
