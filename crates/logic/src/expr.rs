//! Boolean expression AST and parser.
//!
//! The parser accepts the notation used throughout the paper and the wider
//! two-level-synthesis literature:
//!
//! * variables `x0`, `x1`, … (also bare identifiers like `a`, `b`, assigned
//!   indices in order of first appearance);
//! * negation as prefix `!`/`~` or postfix `'`;
//! * conjunction as `*`, `&`, or juxtaposition (`x1 x2` or `x1x2`);
//! * disjunction as `+` or `|`;
//! * exclusive-or as `^`;
//! * constants `0` and `1`; parentheses for grouping.
//!
//! Precedence (tightest first): NOT, AND, XOR, OR.

use std::collections::HashMap;
use std::fmt;

use crate::error::LogicError;
use crate::truth_table::{TruthTable, MAX_VARS};

/// A Boolean expression tree.
///
/// # Examples
///
/// ```
/// use nanoxbar_logic::Expr;
///
/// let (f, names) = Expr::parse("a b + a' b'")?;
/// assert_eq!(names, vec!["a", "b"]);
/// let tt = f.to_truth_table(names.len());
/// assert!(tt.value(0b00) && tt.value(0b11) && !tt.value(0b01));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A constant.
    Const(bool),
    /// A variable by index.
    Var(usize),
    /// Negation.
    Not(Box<Expr>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Exclusive-or.
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Parses an expression, returning the tree and the variable names in
    /// index order.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::ParseExpr`] on malformed input.
    pub fn parse(input: &str) -> Result<(Expr, Vec<String>), LogicError> {
        let mut parser = Parser::new(input);
        let expr = parser.parse_or()?;
        parser.skip_ws();
        if parser.pos < parser.bytes.len() {
            return Err(LogicError::ParseExpr {
                position: parser.pos,
                message: format!("unexpected trailing input: {:?}", &input[parser.pos..]),
            });
        }
        Ok((expr, parser.names))
    }

    /// Evaluates the expression under minterm `m`.
    pub fn eval(&self, m: u64) -> bool {
        match self {
            Expr::Const(b) => *b,
            Expr::Var(v) => (m >> v) & 1 == 1,
            Expr::Not(e) => !e.eval(m),
            Expr::And(a, b) => a.eval(m) && b.eval(m),
            Expr::Or(a, b) => a.eval(m) || b.eval(m),
            Expr::Xor(a, b) => a.eval(m) ^ b.eval(m),
        }
    }

    /// Highest variable index used, if any.
    pub fn max_var(&self) -> Option<usize> {
        match self {
            Expr::Const(_) => None,
            Expr::Var(v) => Some(*v),
            Expr::Not(e) => e.max_var(),
            Expr::And(a, b) | Expr::Or(a, b) | Expr::Xor(a, b) => a.max_var().max(b.max_var()),
        }
    }

    /// Builds the truth table over `num_vars` inputs.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars` is smaller than the highest variable used or
    /// exceeds [`MAX_VARS`].
    pub fn to_truth_table(&self, num_vars: usize) -> TruthTable {
        if let Some(mv) = self.max_var() {
            assert!(
                mv < num_vars,
                "expression uses x{mv}, arity {num_vars} too small"
            );
        }
        assert!(num_vars <= MAX_VARS, "too many variables");
        TruthTable::from_fn(num_vars, |m| self.eval(m))
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(b) => write!(f, "{}", *b as u8),
            Expr::Var(v) => write!(f, "x{v}"),
            Expr::Not(e) => match **e {
                Expr::Var(_) | Expr::Const(_) => write!(f, "!{e}"),
                _ => write!(f, "!({e})"),
            },
            Expr::And(a, b) => {
                let wrap = |e: &Expr| matches!(e, Expr::Or(..) | Expr::Xor(..));
                if wrap(a) {
                    write!(f, "({a})")?;
                } else {
                    write!(f, "{a}")?;
                }
                write!(f, " ")?;
                if wrap(b) {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
            Expr::Or(a, b) => write!(f, "{a} + {b}"),
            Expr::Xor(a, b) => {
                let wrap = |e: &Expr| matches!(e, Expr::Or(..));
                if wrap(a) {
                    write!(f, "({a})")?;
                } else {
                    write!(f, "{a}")?;
                }
                write!(f, " ^ ")?;
                if wrap(b) {
                    write!(f, "({b})")
                } else {
                    write!(f, "{b}")
                }
            }
        }
    }
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    names: Vec<String>,
    by_name: HashMap<String, usize>,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, message: impl Into<String>) -> LogicError {
        LogicError::ParseExpr {
            position: self.pos,
            message: message.into(),
        }
    }

    fn parse_or(&mut self) -> Result<Expr, LogicError> {
        let mut lhs = self.parse_xor()?;
        while let Some(c) = self.peek() {
            if c == b'+' || c == b'|' {
                self.pos += 1;
                let rhs = self.parse_xor()?;
                lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
            } else {
                break;
            }
        }
        Ok(lhs)
    }

    fn parse_xor(&mut self) -> Result<Expr, LogicError> {
        let mut lhs = self.parse_and()?;
        while let Some(b'^') = self.peek() {
            self.pos += 1;
            let rhs = self.parse_and()?;
            lhs = Expr::Xor(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// AND binds by explicit `*`/`&` or juxtaposition: another factor
    /// starting right after the previous one.
    fn parse_and(&mut self) -> Result<Expr, LogicError> {
        let mut lhs = self.parse_unary()?;
        loop {
            match self.peek() {
                Some(b'*') | Some(b'&') => {
                    self.pos += 1;
                    let rhs = self.parse_unary()?;
                    lhs = Expr::And(Box::new(lhs), Box::new(rhs));
                }
                Some(c)
                    if c == b'('
                        || c == b'!'
                        || c == b'~'
                        || c.is_ascii_alphanumeric()
                        || c == b'_' =>
                {
                    let rhs = self.parse_unary()?;
                    lhs = Expr::And(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, LogicError> {
        match self.peek() {
            Some(b'!') | Some(b'~') => {
                self.pos += 1;
                let inner = self.parse_unary()?;
                Ok(Expr::Not(Box::new(inner)))
            }
            _ => self.parse_atom(),
        }
    }

    fn parse_atom(&mut self) -> Result<Expr, LogicError> {
        let c = self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        let mut expr = match c {
            b'(' => {
                self.pos += 1;
                let inner = self.parse_or()?;
                if self.peek() != Some(b')') {
                    return Err(self.err("expected ')'"));
                }
                self.pos += 1;
                inner
            }
            b'0' => {
                self.pos += 1;
                Expr::Const(false)
            }
            b'1' => {
                self.pos += 1;
                Expr::Const(true)
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let name = &self.input[start..self.pos];
                // Paper-style concatenated products like `x1x2x3` denote
                // x1 AND x2 AND x3; split them rather than treating the run
                // as one opaque identifier.
                if let Some(vars) = split_indexed_product(name) {
                    // A trailing complement binds to the *last* factor:
                    // `x1x2'` is x1 AND !x2, matching the paper's notation.
                    let mut last = Expr::Var(self.intern_indexed(vars[vars.len() - 1])?);
                    while self.bytes.get(self.pos) == Some(&b'\'') {
                        self.pos += 1;
                        last = Expr::Not(Box::new(last));
                    }
                    let mut expr = Expr::Var(self.intern_indexed(vars[0])?);
                    for &v in &vars[1..vars.len() - 1] {
                        let rhs = Expr::Var(self.intern_indexed(v)?);
                        expr = Expr::And(Box::new(expr), Box::new(rhs));
                    }
                    Expr::And(Box::new(expr), Box::new(last))
                } else {
                    Expr::Var(self.intern(name)?)
                }
            }
            other => return Err(self.err(format!("unexpected character {:?}", other as char))),
        };
        // Postfix complement(s): x1' or (a + b)''
        while self.bytes.get(self.pos) == Some(&b'\'') {
            self.pos += 1;
            expr = Expr::Not(Box::new(expr));
        }
        Ok(expr)
    }

    /// Interns the canonical indexed variable `x<k>`.
    fn intern_indexed(&mut self, k: usize) -> Result<usize, LogicError> {
        self.intern(&format!("x{k}"))
    }

    /// Names of the form `x<k>` map to index `k`; anything else is assigned
    /// the next free index in order of first appearance.
    fn intern(&mut self, name: &str) -> Result<usize, LogicError> {
        if let Some(&idx) = self.by_name.get(name) {
            return Ok(idx);
        }
        let idx = if let Some(stripped) = name.strip_prefix('x') {
            if let Ok(k) = stripped.parse::<usize>() {
                k
            } else {
                self.names.len()
            }
        } else {
            self.names.len()
        };
        if idx >= MAX_VARS {
            return Err(LogicError::TooManyVariables {
                requested: idx + 1,
                max: MAX_VARS,
            });
        }
        while self.names.len() <= idx {
            self.names.push(String::new());
        }
        if !self.names[idx].is_empty() && self.names[idx] != name {
            return Err(self.err(format!(
                "variable index {idx} claimed by both {:?} and {name:?}",
                self.names[idx]
            )));
        }
        self.names[idx] = name.to_string();
        self.by_name.insert(name.to_string(), idx);
        Ok(idx)
    }
}

/// Splits a name like `x1x2x12` into `[1, 2, 12]`. Returns `None` unless
/// the whole name is two or more `x<digits>` groups.
fn split_indexed_product(name: &str) -> Option<Vec<usize>> {
    let mut vars = Vec::new();
    let mut rest = name;
    while !rest.is_empty() {
        rest = rest.strip_prefix('x')?;
        let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
        if digits.is_empty() {
            return None;
        }
        vars.push(digits.parse().ok()?);
        rest = &rest[digits.len()..];
    }
    if vars.len() >= 2 {
        Some(vars)
    } else {
        None
    }
}

/// Convenience: parses an expression and returns its truth table directly.
///
/// The arity is `max variable index + 1` (at least 1).
///
/// # Errors
///
/// Returns [`LogicError::ParseExpr`] on malformed input.
///
/// ```
/// use nanoxbar_logic::parse_function;
/// let f = parse_function("x0 ^ x1 ^ x2")?;
/// assert_eq!(f.num_vars(), 3);
/// assert!(f.value(0b001) && !f.value(0b011));
/// # Ok::<(), nanoxbar_logic::LogicError>(())
/// ```
pub fn parse_function(input: &str) -> Result<TruthTable, LogicError> {
    let (expr, names) = Expr::parse(input)?;
    let num_vars = expr.max_var().map_or(0, |v| v + 1).max(names.len()).max(1);
    Ok(expr.to_truth_table(num_vars))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tt(s: &str) -> TruthTable {
        parse_function(s).unwrap()
    }

    #[test]
    fn parses_paper_example() {
        // f = x1x2 + x1'x2' — note x1/x2 map to indices 1 and 2.
        let f = tt("x1x2 + x1'x2'");
        assert_eq!(f.num_vars(), 3);
        for m in 0..8u64 {
            let x1 = (m >> 1) & 1 == 1;
            let x2 = (m >> 2) & 1 == 1;
            assert_eq!(f.value(m), (x1 && x2) || (!x1 && !x2));
        }
    }

    #[test]
    fn operator_symbols_are_interchangeable() {
        assert_eq!(tt("x0*x1 + x0'*x1'"), tt("x0 & x1 | !x0 & !x1"));
        assert_eq!(tt("x0 x1"), tt("x0 * x1"));
        assert_eq!(tt("~x0"), tt("x0'"));
    }

    #[test]
    fn precedence_not_and_xor_or() {
        // !a b ^ c + d  ==  (((!a) & b) ^ c) | d
        let f = tt("!x0 x1 ^ x2 + x3");
        for m in 0..16u64 {
            let a = m & 1 == 1;
            let b = (m >> 1) & 1 == 1;
            let c = (m >> 2) & 1 == 1;
            let d = (m >> 3) & 1 == 1;
            assert_eq!(f.value(m), ((!a && b) ^ c) || d);
        }
    }

    #[test]
    fn parentheses_and_double_complement() {
        assert_eq!(tt("(x0 + x1)'"), tt("x0' x1'"));
        assert_eq!(tt("(x0)''"), tt("x0"));
    }

    #[test]
    fn named_variables_get_indices_in_order() {
        let (_, names) = Expr::parse("a b + c").unwrap();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn constants() {
        assert!(tt("1").is_ones());
        assert!(tt("0").is_zero());
        assert_eq!(tt("x0 + 1").count_ones(), 2);
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse_function("x0 +"),
            Err(LogicError::ParseExpr { .. })
        ));
        assert!(matches!(
            parse_function("(x0"),
            Err(LogicError::ParseExpr { .. })
        ));
        assert!(matches!(
            parse_function("x0 ) x1"),
            Err(LogicError::ParseExpr { .. })
        ));
        assert!(parse_function("x0 @ x1").is_err());
    }

    #[test]
    fn display_roundtrip() {
        for s in ["x0 x1 + !x0 !x1", "x0 ^ x1 ^ x2", "(x0 + x1) x2"] {
            let f = tt(s);
            let (expr, _) = Expr::parse(s).unwrap();
            let printed = expr.to_string();
            assert_eq!(tt(&printed), f, "roundtrip of {s} via {printed}");
        }
    }
}
