//! Content-addressed realization cache (ROADMAP: engine-level batch
//! caching).
//!
//! Identical functions recur across jobs in suite sweeps and across
//! requests in the synthesis service; a [`ResultCache`] in front of the
//! backends memoises `(truth-table words, strategy, minimise mode) →`
//! [`CachedSynthesis`] — the [`Arc<Realization>`] plus the SOP cover
//! behind it — so repeated work is served from memory. The cache is
//! **content-addressed**: two jobs built independently from the same
//! bits share one entry, whatever path produced them.
//!
//! The cache is sharded (key-hash → shard) so concurrent batch workers
//! rarely contend on one lock. Admission is **size-aware**: capacity is a
//! *weight* budget, each entry weighs its realization's crosspoint count,
//! and each shard evicts least-recently-used entries until the new
//! entry's weight fits its share of the budget. Weighing by size keeps
//! a flood of one entry class honest — a batch of tiny SAT-optimal
//! lattices can only displace its own weight in diode covers, not an
//! entire working set entry-for-entry. Only *successful* synthesis
//! results are cached — errors are cheap to recompute and often carry
//! per-job context. Chip-specific outcomes (defect-unaware flow reports,
//! BISM mappings) never enter the cache: the key is chip-free by
//! construction, so the cache memoises exactly the chip-independent
//! synthesis.
//!
//! Correctness note: synthesis is deterministic in the key, so serving a
//! cached [`Realization`] is **bit-identical** to re-synthesising (the
//! `proptest_cache` suite proves it across thread counts). Time-limited
//! engines are the one exception — a deadline can make synthesis
//! non-deterministic by construction, cached or not.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nanoxbar_logic::{Cover, TruthTable};

use crate::backend::MinimizeMode;
use crate::tech::Realization;

/// The content address of one synthesis result.
///
/// Covers everything the built-in backends read: the target function (its
/// packed truth-table words plus arity), the backend name, and the cover
/// minimisation mode. Engines with different limits or custom backends
/// should not share one cache under the same names.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Arity of the target (words alone cannot distinguish e.g. the
    /// 1-variable and 2-variable constant-one functions).
    num_vars: usize,
    /// The packed truth table, 64 minterms per word.
    words: Vec<u64>,
    /// Resolved backend name (registry key).
    strategy: String,
    /// Cover minimisation mode the backends synthesise from.
    minimize: MinimizeMode,
}

impl CacheKey {
    /// Builds the content address of `(f, strategy, minimize)`.
    pub fn new(f: &TruthTable, strategy: &str, minimize: MinimizeMode) -> Self {
        CacheKey {
            num_vars: f.num_vars(),
            words: f.words().to_vec(),
            strategy: strategy.to_string(),
            minimize,
        }
    }

    /// Rebuilds a key from its stored fields — the decode half of a
    /// persisted cache entry.
    pub fn from_parts(
        num_vars: usize,
        words: Vec<u64>,
        strategy: String,
        minimize: MinimizeMode,
    ) -> Self {
        CacheKey {
            num_vars,
            words,
            strategy,
            minimize,
        }
    }

    /// Arity of the target function.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The packed truth table, 64 minterms per word.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Resolved backend name.
    pub fn strategy(&self) -> &str {
        &self.strategy
    }

    /// Cover minimisation mode.
    pub fn minimize(&self) -> MinimizeMode {
        self.minimize
    }
}

/// One cached synthesis: the realization plus the SOP cover the backend
/// built along the way (when it built one — the SAT path does not), so a
/// cache hit on a chip job skips the cover minimisation too, not just the
/// synthesis.
#[derive(Clone, Debug)]
pub struct CachedSynthesis {
    /// The synthesised realization, shared with every consumer.
    pub realization: Arc<Realization>,
    /// The memoised SOP cover behind the realization, if the backend
    /// produced one.
    pub cover: Option<Arc<Cover>>,
}

/// The admission weight of one entry: the realization's crosspoint count
/// (the paper's area metric, a faithful proxy for its memory footprint),
/// at least 1 so constants still cost something.
fn entry_weight(value: &CachedSynthesis) -> usize {
    value.realization.area().max(1)
}

/// One cached entry with its recency stamp.
struct Entry {
    value: CachedSynthesis,
    /// Admission weight ([`entry_weight`] at insert time).
    weight: usize,
    /// Shard-local logical clock value of the last touch.
    stamp: u64,
}

/// What one [`Shard::insert`] did, for the cache-wide counters.
#[derive(Default)]
struct Admission {
    /// Entries dropped to make room.
    evicted: u64,
    /// Total weight of the dropped entries.
    evicted_weight: u64,
    /// Whether the entry was refused outright (heavier than the whole
    /// shard budget).
    rejected: bool,
    /// Whether the key was new to the shard (an insert, not a refresh).
    fresh: bool,
}

/// One lock's worth of the cache.
struct Shard {
    entries: HashMap<CacheKey, Entry>,
    /// Sum of resident entry weights.
    weight: usize,
    /// Monotone logical clock for LRU stamps.
    clock: u64,
}

impl Shard {
    fn touch(&mut self, key: &CacheKey) -> Option<CachedSynthesis> {
        self.clock += 1;
        let clock = self.clock;
        let entry = self.entries.get_mut(key)?;
        entry.stamp = clock;
        Some(entry.value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: CachedSynthesis, capacity: usize) -> Admission {
        self.clock += 1;
        let stamp = self.clock;
        let mut admission = Admission::default();
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.stamp = stamp;
            return admission;
        }
        let weight = entry_weight(&value);
        if weight > capacity {
            // Heavier than the shard's whole budget: admitting it would
            // flush the shard for one entry — refuse instead.
            admission.rejected = true;
            return admission;
        }
        admission.fresh = true;
        while self.weight + weight > capacity {
            // O(len) scan per eviction; shards stay small (capacity /
            // shard count), so this beats carrying an intrusive list.
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone())
                .expect("non-empty shard over weight budget");
            let dropped = self.entries.remove(&oldest).expect("oldest key resident");
            self.weight -= dropped.weight;
            admission.evicted += 1;
            admission.evicted_weight += dropped.weight as u64;
        }
        self.weight += weight;
        self.entries.insert(
            key,
            Entry {
                value,
                weight,
                stamp,
            },
        );
        admission
    }
}

/// Counters of a [`ResultCache`], via [`ResultCache::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries written.
    pub insertions: u64,
    /// Entries dropped to make room.
    pub evictions: u64,
    /// Total weight of the dropped entries.
    pub evicted_weight: u64,
    /// Insertions refused because the entry outweighed a whole shard.
    pub rejected: u64,
    /// Entries currently resident.
    pub len: usize,
    /// Total resident weight.
    pub weight: usize,
    /// Total configured weight budget.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of lookups that hit, in `[0, 1]` (0 when no lookups ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, content-addressed LRU cache of synthesis results.
///
/// Shareable between engines (e.g. one per minimise mode in the synthesis
/// service) — [`CacheKey`] includes the minimise mode, so mixed engines
/// cannot collide. Capacity 0 is a valid always-miss cache, but prefer
/// leaving the engine's cache unset for that.
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard weight budgets summing exactly to the configured total.
    shard_caps: Vec<usize>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    evicted_weight: AtomicU64,
    rejected: AtomicU64,
    /// Observer of *fresh* admissions (not refreshes, not rejections),
    /// set at most once — the service's persistence layer hangs its
    /// append-to-log hook here. Called outside the shard lock.
    insert_listener: std::sync::OnceLock<InsertListener>,
}

/// Callback invoked on every fresh cache admission.
pub type InsertListener = Box<dyn Fn(&CacheKey, &CachedSynthesis) + Send + Sync>;

impl ResultCache {
    /// A cache holding at most `capacity` *weight* across all shards,
    /// where an entry weighs its realization's crosspoint count (≥ 1).
    /// A small diode cover weighs ~10, a 2×2 optimal lattice 4.
    pub fn new(capacity: usize) -> Self {
        let n_shards = capacity.clamp(1, 8);
        let shard_caps: Vec<usize> = (0..n_shards)
            .map(|i| capacity / n_shards + usize::from(i < capacity % n_shards))
            .collect();
        ResultCache {
            shards: (0..n_shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        weight: 0,
                        clock: 0,
                    })
                })
                .collect(),
            shard_caps,
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_weight: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            insert_listener: std::sync::OnceLock::new(),
        }
    }

    /// Registers the fresh-admission observer. At most one listener per
    /// cache; later calls are ignored (first registration wins). Boot
    /// sequences that preload entries should register *after*
    /// preloading, so replayed entries are not re-observed.
    pub fn set_insert_listener(&self, listener: InsertListener) {
        let _ = self.insert_listener.set(listener);
    }

    /// A copy of every resident entry, in no particular order — the
    /// source for log compaction and warm-start snapshots. Values are
    /// `Arc` clones, so this is cheap relative to the entries.
    pub fn snapshot(&self) -> Vec<(CacheKey, CachedSynthesis)> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache shard poisoned")
                    .entries
                    .iter()
                    .map(|(k, e)| (k.clone(), e.value.clone()))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    /// Looks up a key, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<CachedSynthesis> {
        let idx = self.shard_of(key);
        let hit = self.shards[idx]
            .lock()
            .expect("cache shard poisoned")
            .touch(key);
        match &hit {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        hit
    }

    /// Inserts (or refreshes) a successful synthesis result, evicting by
    /// weight until it fits (and refusing entries heavier than a whole
    /// shard's budget).
    pub fn insert(&self, key: CacheKey, value: CachedSynthesis) {
        let idx = self.shard_of(&key);
        if self.shard_caps[idx] == 0 {
            return;
        }
        let listener = self.insert_listener.get();
        let observed = listener.map(|_| (key.clone(), value.clone()));
        let admission = self.shards[idx]
            .lock()
            .expect("cache shard poisoned")
            .insert(key, value, self.shard_caps[idx]);
        if admission.rejected {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return;
        }
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.evictions
            .fetch_add(admission.evicted, Ordering::Relaxed);
        self.evicted_weight
            .fetch_add(admission.evicted_weight, Ordering::Relaxed);
        if admission.fresh {
            if let (Some(listener), Some((key, value))) = (listener, observed.as_ref()) {
                listener(key, value);
            }
        }
    }

    /// Entries currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").entries.len())
            .sum()
    }

    /// Resident weight across all shards.
    pub fn weight(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").weight)
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            evicted_weight: self.evicted_weight.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            len: self.len(),
            weight: self.weight(),
            capacity: self.capacity,
        }
    }
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nanoxbar_lattice::Lattice;

    fn key(bits: u64, strategy: &str) -> CacheKey {
        let f = TruthTable::from_fn(3, |m| (bits >> m) & 1 == 1);
        CacheKey::new(&f, strategy, MinimizeMode::Isop)
    }

    fn value() -> CachedSynthesis {
        CachedSynthesis {
            realization: Arc::new(Realization::Lattice(Lattice::constant(3, true))),
            cover: Some(Arc::new(nanoxbar_logic::Cover::one(3))),
        }
    }

    #[test]
    fn hit_returns_the_inserted_arcs() {
        let cache = ResultCache::new(16);
        assert!(cache.get(&key(0b1010, "diode")).is_none());
        let v = value();
        cache.insert(key(0b1010, "diode"), v.clone());
        let hit = cache.get(&key(0b1010, "diode")).expect("hit");
        assert!(
            Arc::ptr_eq(&hit.realization, &v.realization),
            "shared, not cloned"
        );
        assert!(
            Arc::ptr_eq(hit.cover.as_ref().unwrap(), v.cover.as_ref().unwrap()),
            "cover rides along"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.len), (1, 1, 1));
        assert!((stats.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keys_distinguish_strategy_and_arity() {
        let cache = ResultCache::new(16);
        cache.insert(key(0b1010, "diode"), value());
        assert!(cache.get(&key(0b1010, "fet")).is_none());
        // Same words, different arity: the 1-var and 2-var identity-ish
        // tables must not collide.
        let f1 = TruthTable::from_fn(1, |m| m == 1);
        let f2 = TruthTable::from_fn(2, |m| m == 1);
        assert_ne!(
            CacheKey::new(&f1, "diode", MinimizeMode::Isop),
            CacheKey::new(&f2, "diode", MinimizeMode::Isop)
        );
    }

    #[test]
    fn capacity_bounds_residency_with_lru_eviction() {
        let cache = ResultCache::new(4);
        for bits in 0..32u64 {
            cache.insert(key(bits, "diode"), value());
        }
        assert!(cache.len() <= 4, "len {} over capacity", cache.len());
        assert!(cache.stats().evictions >= 28);

        // Single-shard LRU order is observable: touch one key, fill the
        // shard, and the touched key must survive longer than untouched.
        let lru = ResultCache::new(1);
        assert_eq!(lru.shards.len(), 1);
        lru.insert(key(1, "a"), value());
        lru.insert(key(2, "a"), value());
        assert!(lru.get(&key(1, "a")).is_none(), "evicted by key 2");
        assert!(lru.get(&key(2, "a")).is_some());
    }

    #[test]
    fn zero_capacity_never_stores() {
        let cache = ResultCache::new(0);
        cache.insert(key(1, "diode"), value());
        assert!(cache.is_empty());
        assert!(cache.get(&key(1, "diode")).is_none());
    }

    #[test]
    fn listener_sees_fresh_inserts_only_and_snapshot_holds_them() {
        let cache = ResultCache::new(16);
        cache.insert(key(1, "pre"), value()); // before registration: unobserved
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        cache.set_insert_listener(Box::new(move |k, _| {
            sink.lock().unwrap().push(k.strategy().to_string());
        }));
        cache.insert(key(2, "fresh"), value());
        cache.insert(key(2, "fresh"), value()); // refresh: unobserved
        let observed = seen.lock().unwrap().clone();
        assert_eq!(observed, vec!["fresh".to_string()]);

        let snapshot = cache.snapshot();
        assert_eq!(snapshot.len(), 2);
        let mut strategies: Vec<&str> = snapshot.iter().map(|(k, _)| k.strategy()).collect();
        strategies.sort_unstable();
        assert_eq!(strategies, ["fresh", "pre"]);

        // Second registration is a no-op (first wins).
        cache.set_insert_listener(Box::new(|_, _| panic!("must not replace the listener")));
        cache.insert(key(3, "late"), value());
        assert_eq!(seen.lock().unwrap().len(), 2);
    }

    #[test]
    fn key_accessors_roundtrip_through_from_parts() {
        let original = key(0b1100, "diode");
        let rebuilt = CacheKey::from_parts(
            original.num_vars(),
            original.words().to_vec(),
            original.strategy().to_string(),
            original.minimize(),
        );
        assert_eq!(original, rebuilt);
    }

    /// A value whose weight is the xnor dual-lattice area (4).
    fn heavy_value() -> CachedSynthesis {
        let f = nanoxbar_logic::parse_function("x0 x1 + !x0 !x1").unwrap();
        CachedSynthesis {
            realization: Arc::new(Realization::Lattice(
                nanoxbar_lattice::synth::dual_based::synthesize(&f),
            )),
            cover: None,
        }
    }

    #[test]
    fn admission_is_weight_aware() {
        assert_eq!(entry_weight(&value()), 1, "constant lattice weighs 1");
        assert_eq!(entry_weight(&heavy_value()), 4, "2x2 lattice weighs 4");

        // Weight-4 entries into a 64-weight cache (8 shards × 8 weight):
        // residency is bounded by weight, not entry count, and the weight
        // evicted is tracked.
        let cache = ResultCache::new(64);
        for bits in 0..64u64 {
            cache.insert(key(bits, "heavy"), heavy_value());
        }
        let stats = cache.stats();
        assert!(stats.weight <= 64, "weight {} over budget", stats.weight);
        assert!(stats.len <= 16, "len {} over weight budget", stats.len);
        assert_eq!(stats.evicted_weight, 4 * stats.evictions);
        assert!(stats.evictions > 0);

        // An entry heavier than a whole shard's budget is refused, and
        // never flushes resident entries to make room.
        let tiny = ResultCache::new(2);
        tiny.insert(key(1, "small"), value());
        let before = tiny.len();
        tiny.insert(key(2, "big"), heavy_value());
        let stats = tiny.stats();
        assert_eq!(stats.rejected, 1, "{stats:?}");
        assert_eq!(tiny.len(), before, "rejection must not evict");
        assert!(tiny.get(&key(2, "big")).is_none());
    }
}
