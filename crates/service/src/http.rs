//! Minimal HTTP/1.1 framing over `std` streams.
//!
//! Implements just what the service needs: request parsing
//! (request-line + headers + `Content-Length` body, keep-alive by
//! default) in two flavours — the blocking [`read_request`] and the
//! incremental [`RequestParser`] the readiness reactor feeds from
//! non-blocking reads — plus response writing with explicit
//! `Content-Length` and chunked (`Transfer-Encoding: chunked`) response
//! framing for streamed batches. No chunked *request* bodies, no TLS,
//! no HTTP/2 — clients that need more sit behind a reverse proxy, which
//! is how std-only services deploy anyway.

use std::io::{self, BufRead, Write};

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method token (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path only; queries are kept verbatim).
    pub path: String,
    /// Minor HTTP version: 0 for `HTTP/1.0` (default-close semantics),
    /// 1 for `HTTP/1.1`.
    pub version_minor: u8,
    /// Header `(name, value)` pairs in arrival order; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by case-insensitive name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the connection closes after this exchange: a `close` token
    /// in `Connection` (list-valued headers included), or HTTP/1.0
    /// without an explicit `keep-alive` token.
    pub fn wants_close(&self) -> bool {
        let token = |t: &str| {
            self.header("connection")
                .is_some_and(|v| v.split(',').any(|item| item.trim().eq_ignore_ascii_case(t)))
        };
        token("close") || (self.version_minor == 0 && !token("keep-alive"))
    }
}

/// A response ready to serialise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Seconds for a `Retry-After` header (load-shed responses tell
    /// clients — including peer replicas — when to try again).
    pub retry_after: Option<u64>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// A plain-text response (metrics, errors).
    pub fn text(status: u16, body: String) -> Response {
        Response {
            status,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
        }
    }

    /// The same response with a `Retry-After: seconds` header attached.
    pub fn with_retry_after(mut self, seconds: u64) -> Response {
        self.retry_after = Some(seconds);
        self
    }

    /// The standard reason phrase for the status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            413 => "Payload Too Large",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }
}

/// Errors from request parsing.
#[derive(Debug)]
pub enum HttpError {
    /// The socket failed or timed out.
    Io(io::Error),
    /// The request was syntactically invalid.
    Malformed(&'static str),
    /// The declared body exceeds the configured ceiling.
    BodyTooLarge {
        /// Declared `Content-Length`.
        declared: usize,
        /// Configured ceiling.
        limit: usize,
    },
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
            HttpError::Malformed(what) => write!(f, "malformed request: {what}"),
            HttpError::BodyTooLarge { declared, limit } => {
                write!(f, "body of {declared} bytes exceeds the {limit}-byte limit")
            }
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Longest request line / header line accepted.
const MAX_LINE: usize = 8 * 1024;
/// Most headers accepted per request.
const MAX_HEADERS: usize = 100;

/// Parses a request line (`METHOD target HTTP/1.x`).
fn parse_request_line(line: &str) -> Result<(String, String, u8), HttpError> {
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or(HttpError::Malformed("empty request line"))?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or(HttpError::Malformed("missing request target"))?
        .to_string();
    let version = parts
        .next()
        .ok_or(HttpError::Malformed("missing HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("unsupported HTTP version"));
    }
    Ok((method, path, u8::from(version != "HTTP/1.0")))
}

/// Parses one `Name: value` header line.
fn parse_header_line(line: &str) -> Result<(String, String), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or(HttpError::Malformed("header without colon"))?;
    Ok((name.trim().to_ascii_lowercase(), value.trim().to_string()))
}

/// The declared body length of a parsed head, with the two classic
/// request-smuggling vectors refused: chunked (or any
/// `Transfer-Encoding`) request bodies — silently treating one as empty
/// would desynchronise the keep-alive stream — and duplicate
/// `Content-Length` headers (two parties picking different values),
/// rejected per RFC 9112 §6.3 instead of silently taking the first.
fn declared_body_length(request: &Request, max_body: usize) -> Result<usize, HttpError> {
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::Malformed("transfer-encoding not supported"));
    }
    let mut lengths = request
        .headers
        .iter()
        .filter(|(k, _)| k == "content-length");
    let length = match (lengths.next(), lengths.next()) {
        (None, _) => 0,
        (Some(_), Some(_)) => return Err(HttpError::Malformed("duplicate content-length")),
        (Some((_, v)), None) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
    };
    if length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: length,
            limit: max_body,
        });
    }
    Ok(length)
}

/// Reads one request off a keep-alive connection.
///
/// Returns `Ok(None)` on clean EOF before the first byte (the client hung
/// up between requests — not an error).
///
/// # Errors
///
/// [`HttpError`] on malformed framing, an oversized body, or socket
/// failure (including read timeouts).
pub fn read_request<R: BufRead>(
    stream: &mut R,
    max_body: usize,
) -> Result<Option<Request>, HttpError> {
    let line = match read_line(stream)? {
        None => return Ok(None),
        Some(line) => line,
    };
    let (method, path, version_minor) = parse_request_line(&line)?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(stream)?.ok_or(HttpError::Malformed("eof inside headers"))?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::Malformed("too many headers"));
        }
        headers.push(parse_header_line(&line)?);
    }

    let request = Request {
        method,
        path,
        version_minor,
        headers,
        body: Vec::new(),
    };
    let length = declared_body_length(&request, max_body)?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok(Some(Request { body, ..request }))
}

/// Reads one CRLF- (or LF-) terminated line; `None` on immediate EOF.
fn read_line<R: BufRead>(stream: &mut R) -> Result<Option<String>, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::Malformed("eof inside line"));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    let text = String::from_utf8(line)
                        .map_err(|_| HttpError::Malformed("non-utf8 header line"))?;
                    return Ok(Some(text));
                }
                if line.len() >= MAX_LINE {
                    return Err(HttpError::Malformed("line too long"));
                }
                line.push(byte[0]);
            }
            Err(e) => return Err(HttpError::Io(e)),
        }
    }
}

/// Incremental request parser for non-blocking reads: the reactor
/// [`RequestParser::feed`]s it whatever bytes a readable socket yields,
/// then asks [`RequestParser::try_next`] whether a complete request has
/// accumulated. Grammar and limits are exactly [`read_request`]'s
/// (shared helpers), so the reactor accepts and rejects the same wire
/// bytes the blocking path did.
#[derive(Debug, Default)]
pub struct RequestParser {
    buffer: Vec<u8>,
}

impl RequestParser {
    /// A parser with an empty buffer.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Appends freshly-read socket bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buffer.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a parsed request. Non-zero
    /// between requests means a pipelined request is already waiting.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    /// Tries to parse one complete request off the front of the buffer.
    /// `Ok(None)` means "incomplete — feed more bytes"; a parsed request
    /// consumes its bytes, leaving any pipelined successor buffered.
    ///
    /// # Errors
    ///
    /// [`HttpError::Malformed`] / [`HttpError::BodyTooLarge`] exactly as
    /// [`read_request`] (a framing error poisons the connection: the
    /// buffer position is no longer trustworthy).
    pub fn try_next(&mut self, max_body: usize) -> Result<Option<Request>, HttpError> {
        // Locate the end of the head: the first empty line.
        let mut lines = Vec::new();
        let mut cursor = 0usize;
        let head_end = loop {
            let Some(nl) = self.buffer[cursor..].iter().position(|&b| b == b'\n') else {
                // No terminator yet: enforce the per-line bound on the
                // unterminated tail so a header dribbler cannot balloon
                // the buffer, then wait for more bytes.
                if self.buffer.len() - cursor > MAX_LINE {
                    return Err(HttpError::Malformed("line too long"));
                }
                return Ok(None);
            };
            let mut line = &self.buffer[cursor..cursor + nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.len() > MAX_LINE {
                return Err(HttpError::Malformed("line too long"));
            }
            if line.is_empty() && !lines.is_empty() {
                break cursor + nl + 1;
            }
            if line.is_empty() {
                // Leading blank line before the request line: refuse (the
                // blocking path would try to parse it as a request line).
                return Err(HttpError::Malformed("empty request line"));
            }
            if lines.len() > MAX_HEADERS {
                return Err(HttpError::Malformed("too many headers"));
            }
            let text = std::str::from_utf8(line)
                .map_err(|_| HttpError::Malformed("non-utf8 header line"))?;
            lines.push(text.to_string());
            cursor += nl + 1;
        };

        let (method, path, version_minor) = parse_request_line(&lines[0])?;
        let mut headers = Vec::with_capacity(lines.len() - 1);
        for line in &lines[1..] {
            headers.push(parse_header_line(line)?);
        }
        let request = Request {
            method,
            path,
            version_minor,
            headers,
            body: Vec::new(),
        };
        let length = declared_body_length(&request, max_body)?;
        if self.buffer.len() < head_end + length {
            return Ok(None);
        }
        let body = self.buffer[head_end..head_end + length].to_vec();
        self.buffer.drain(..head_end + length);
        Ok(Some(Request { body, ..request }))
    }
}

/// Serialises a response, honouring keep-alive (`close` appends
/// `Connection: close`).
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response<W: Write>(
    stream: &mut W,
    response: &Response,
    close: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    );
    if let Some(seconds) = response.retry_after {
        head.push_str(&format!("retry-after: {seconds}\r\n"));
    }
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// [`write_response`] into owned bytes — how the reactor loads a
/// response into a connection's write buffer.
pub fn response_bytes(response: &Response, close: bool) -> Vec<u8> {
    let mut out = Vec::with_capacity(response.body.len() + 128);
    write_response(&mut out, response, close).expect("writing to a Vec cannot fail");
    out
}

/// The head of a chunked (`Transfer-Encoding: chunked`) streaming
/// response. Body bytes follow as [`chunk_bytes`] frames, closed by
/// [`CHUNKED_TAIL`]; de-chunked, the stream is an ordinary body.
pub fn chunked_head(status: u16, content_type: &str, close: bool) -> Vec<u8> {
    let reason = Response {
        status,
        content_type: "",
        body: Vec::new(),
        retry_after: None,
    };
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n",
        reason.reason(),
    );
    if close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    head.into_bytes()
}

/// One chunk frame (`{len:x}\r\n{bytes}\r\n`). Empty input yields no
/// frame — a zero-length chunk would terminate the stream early.
pub fn chunk_bytes(bytes: &[u8]) -> Vec<u8> {
    if bytes.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(bytes.len() + 16);
    out.extend_from_slice(format!("{:x}\r\n", bytes.len()).as_bytes());
    out.extend_from_slice(bytes);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating frame of a chunked response (no trailers).
pub const CHUNKED_TAIL: &[u8] = b"0\r\n\r\n";

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(text: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(text.as_bytes()), 1024)
    }

    /// The same wire bytes through the incremental parser.
    fn parse_incremental(text: &str) -> Result<Option<Request>, HttpError> {
        let mut parser = RequestParser::new();
        parser.feed(text.as_bytes());
        parser.try_next(1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        for parsed in [
            parse("POST /v1/synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd"),
            parse_incremental(
                "POST /v1/synthesize HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
            ),
        ] {
            let req = parsed.unwrap().unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/v1/synthesize");
            assert_eq!(req.header("host"), Some("x"));
            assert_eq!(req.body, b"abcd");
            assert!(!req.wants_close());
        }
    }

    #[test]
    fn parses_get_without_body_and_lf_only_lines() {
        for parsed in [
            parse("GET /healthz HTTP/1.1\nConnection: close\n\n"),
            parse_incremental("GET /healthz HTTP/1.1\nConnection: close\n\n"),
        ] {
            let req = parsed.unwrap().unwrap();
            assert_eq!(req.method, "GET");
            assert!(req.body.is_empty());
            assert!(req.wants_close());
        }
    }

    #[test]
    fn close_semantics_cover_http10_and_token_lists() {
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert_eq!(req.version_minor, 0);
        assert!(req.wants_close(), "HTTP/1.0 defaults to close");
        let req = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.wants_close(), "explicit keep-alive overrides");
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.wants_close(), "close token inside a list counts");
    }

    #[test]
    fn chunked_bodies_are_refused_not_smuggled() {
        for result in [
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            parse_incremental("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
        ] {
            assert!(matches!(
                result,
                Err(HttpError::Malformed("transfer-encoding not supported"))
            ));
        }
        for result in [
            parse("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 0\r\n\r\nab"),
            parse_incremental(
                "POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 0\r\n\r\nab",
            ),
        ] {
            assert!(matches!(
                result,
                Err(HttpError::Malformed("duplicate content-length"))
            ));
        }
    }

    #[test]
    fn clean_eof_is_none_and_framing_errors_are_typed() {
        assert!(parse("").unwrap().is_none());
        assert!(matches!(parse("GET\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            parse("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge { declared: 9999, .. })
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: two\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // The incremental parser agrees on every framing error…
        assert!(matches!(
            parse_incremental("GET\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_incremental("GET / SPDY/9\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse_incremental("POST / HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(HttpError::BodyTooLarge { declared: 9999, .. })
        ));
        // …but an empty buffer is simply "not yet", not EOF.
        assert!(parse_incremental("").unwrap().is_none());
    }

    #[test]
    fn incremental_parser_handles_split_feeds_and_pipelining() {
        let mut parser = RequestParser::new();
        let wire =
            b"POST /v1/batch HTTP/1.1\r\ncontent-length: 2\r\n\r\nhiGET /healthz HTTP/1.1\r\n\r\n";
        // Byte-at-a-time dribble: no premature parse, no byte lost.
        for (i, byte) in wire.iter().enumerate() {
            parser.feed(std::slice::from_ref(byte));
            if i + 1 < 48 {
                // Head (44 bytes) + body (2) land at byte 46 of this
                // wire; before the body completes, try_next must keep
                // answering "incomplete".
                if i + 1 < 46 {
                    assert!(parser.try_next(1024).unwrap().is_none(), "byte {i}");
                }
            }
        }
        let first = parser.try_next(1024).unwrap().expect("first request");
        assert_eq!(first.method, "POST");
        assert_eq!(first.body, b"hi");
        // The pipelined successor is already buffered and parses next.
        assert!(parser.buffered() > 0);
        let second = parser.try_next(1024).unwrap().expect("second request");
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert_eq!(parser.buffered(), 0);
        assert!(parser.try_next(1024).unwrap().is_none());
    }

    #[test]
    fn incremental_parser_bounds_header_dribble() {
        let mut parser = RequestParser::new();
        parser.feed(b"GET / HTTP/1.1\r\n");
        // An unterminated line longer than MAX_LINE is refused even
        // though no newline ever arrives — the slow-loris memory bound.
        parser.feed(&vec![b'a'; MAX_LINE + 2]);
        assert!(matches!(
            parser.try_next(1024),
            Err(HttpError::Malformed("line too long"))
        ));
    }

    #[test]
    fn responses_serialise_with_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, &Response::json(200, "{}".into()), true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        assert!(!text.contains("retry-after"), "absent unless requested");

        let mut out = Vec::new();
        let shed = Response::json(503, "{}".into()).with_retry_after(2);
        write_response(&mut out, &shed, false).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("retry-after: 2\r\n"), "{text}");
        // response_bytes is the same serialisation.
        assert_eq!(response_bytes(&shed, false), text.as_bytes());
    }

    #[test]
    fn chunked_framing_round_trips() {
        let head = String::from_utf8(chunked_head(200, "application/json", false)).unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"), "{head}");
        assert!(head.contains("transfer-encoding: chunked\r\n"));
        assert!(!head.contains("content-length"), "{head}");
        assert!(head.ends_with("\r\n\r\n"));
        let closing = String::from_utf8(chunked_head(200, "application/json", true)).unwrap();
        assert!(closing.contains("connection: close\r\n"));

        assert_eq!(chunk_bytes(b"hello"), b"5\r\nhello\r\n");
        assert_eq!(chunk_bytes(&[b'x'; 16]), b"10\r\nxxxxxxxxxxxxxxxx\r\n");
        assert!(chunk_bytes(b"").is_empty(), "empty chunks must be elided");
        assert_eq!(CHUNKED_TAIL, b"0\r\n\r\n");
    }
}
