//! Technology shoot-out: one engine batch comparing diode, FET, and
//! four-terminal lattice areas across the built-in benchmark suite, plus
//! preprocessing effects.
//!
//! Run with: `cargo run --example technology_shootout`

use nanoxbar_core::report::Table;
use nanoxbar_engine::{Engine, Job, Strategy};
use nanoxbar_lattice::synth::pcircuit;
use nanoxbar_logic::suite::standard_suite;

const STRATEGIES: [Strategy; 3] = [Strategy::Diode, Strategy::Fet, Strategy::DualLattice];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = standard_suite();
    let engine = Engine::builder().build()?;

    // The whole (function × strategy) grid as ONE batch: the pool chews
    // through it, and per-job isolation keeps constant functions (which the
    // two-terminal strategies reject) from aborting the sweep.
    let targets: Vec<_> = suite
        .iter()
        .filter(|f| !f.table.is_zero() && !f.table.is_ones())
        .collect();
    let jobs: Vec<Job> = targets
        .iter()
        .flat_map(|f| {
            STRATEGIES.map(|s| {
                Job::synthesize(f.table.clone())
                    .with_strategy(s)
                    .labeled(f.name.clone())
            })
        })
        .collect();
    let results = engine.run_batch(&jobs);

    let mut table = Table::new(&["function", "diode", "fet", "lattice", "winner"]);
    let mut lattice_wins = 0usize;
    let mut compared = 0usize;
    let mut log_diode_ratio = 0.0f64;
    let mut log_fet_ratio = 0.0f64;
    for (i, f) in targets.iter().enumerate() {
        let row = &results[i * STRATEGIES.len()..(i + 1) * STRATEGIES.len()];
        // A failed job gets an error row, never a fake area-0 win.
        let areas: Result<Vec<usize>, &nanoxbar_engine::Error> =
            row.iter().map(|r| r.as_ref().map(|ok| ok.area())).collect();
        let areas = match areas {
            Ok(areas) => areas,
            Err(e) => {
                table.row_owned(vec![
                    f.name.clone(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    format!("error: {e}"),
                ]);
                continue;
            }
        };
        compared += 1;
        let (diode, fet, lattice) = (areas[0], areas[1], areas[2]);
        let winner = [("diode", diode), ("fet", fet), ("lattice", lattice)]
            .into_iter()
            .min_by_key(|&(_, a)| a)
            .expect("non-empty")
            .0;
        if winner == "lattice" {
            lattice_wins += 1;
        }
        log_diode_ratio += (diode as f64 / lattice as f64).ln();
        log_fet_ratio += (fet as f64 / lattice as f64).ln();
        table.row_owned(vec![
            f.name.clone(),
            diode.to_string(),
            fet.to_string(),
            lattice.to_string(),
            winner.to_string(),
        ]);
    }
    println!("{}", table.render());
    let n = compared.max(1) as f64;
    println!(
        "lattice wins {:.0}% of functions; geomean diode/lattice = {:.2}, \
         fet/lattice = {:.2}",
        lattice_wins as f64 / n * 100.0,
        (log_diode_ratio / n).exp(),
        (log_fet_ratio / n).exp()
    );

    // Preprocessing teaser: pick one function where P-circuits help.
    println!("\nP-circuit decomposition on selected functions:");
    for f in suite.iter().filter(|f| f.num_vars <= 6).take(6) {
        if f.table.is_zero() || f.table.is_ones() {
            continue;
        }
        let r = pcircuit::synthesize(&f.table);
        println!(
            "  {:<12} direct {:>3} sites -> decomposed {:>3} sites (split x{})",
            f.name,
            r.direct_area,
            r.lattice.area(),
            r.split_var
        );
    }
    Ok(())
}
